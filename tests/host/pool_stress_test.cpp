// Pooled-path race soak (a ThreadSanitizer target): concurrent producers
// draw window shells from one shared PayloadPool and submit them while a
// poller recycles results back into it and a control thread live-resizes
// the fabric.  The pool's freelists are the new cross-thread surface —
// producer threads, worker threads (recycling measurements post-solve),
// the poller, and resize-built engines all touch the same object — so
// this soak pins: no data races, no lost or duplicated windows, results
// bit-identical to the serial reference, and conserved pool counters
// (every recycled buffer was acquired or dropped exactly once).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "host/payload_pool.hpp"
#include "host/reconstruction_fabric.hpp"
#include "sig/ecg_synth.hpp"
#include "sig/rng.hpp"

namespace wbsn::host {
namespace {

using WindowKey = std::pair<std::uint32_t, std::uint32_t>;

bool bit_identical(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

std::vector<CompressedWindow> patient_windows(std::uint32_t patient_id, int beats) {
  sig::SynthConfig synth;
  synth.num_leads = 1;
  synth.episodes = {{sig::RhythmEpisode::Kind::kSinus, beats}};
  sig::Rng rng(0x9001D000ULL + patient_id);
  const auto record = synthesize_ecg(synth, rng);

  RecordCompressionConfig compression;
  compression.window_samples = 128;
  compression.cr_percent = 60.0;
  return compress_record(record, patient_id, compression);
}

TEST(PoolStress, PooledSubmitPollRaceLiveResize) {
  constexpr int kProducers = 3;
  constexpr int kBeatsPerPatient = 5;

  std::vector<std::vector<CompressedWindow>> traffic;
  std::size_t total_windows = 0;
  for (int p = 0; p < kProducers; ++p) {
    traffic.push_back(patient_windows(static_cast<std::uint32_t>(p), kBeatsPerPatient));
    total_windows += traffic.back().size();
  }
  ASSERT_GT(total_windows, 0u);

  // Serial unpooled reference.
  std::map<WindowKey, std::vector<double>> expected;
  {
    ReconstructionEngine serial{EngineConfig{}};
    for (const auto& windows : traffic) {
      for (const auto& window : windows) serial.submit(window);
    }
    for (auto& result : serial.drain()) {
      expected.emplace(WindowKey{result.patient_id, result.window_index},
                       std::move(result.signal));
    }
  }

  auto pool = std::make_shared<PayloadPool>();
  FabricConfig cfg;
  cfg.shards = 2;
  cfg.engine.threads = 1;
  cfg.engine.batch_windows = 0;
  cfg.engine.payload_pool = pool;
  ReconstructionFabric fabric(cfg);

  std::atomic<std::size_t> retrieved{0};
  std::atomic<bool> producers_done{false};

  std::vector<std::thread> producers;
  producers.reserve(traffic.size());
  for (const auto& windows : traffic) {
    producers.emplace_back([&fabric, &pool, &windows] {
      for (const auto& tmpl : windows) {
        CompressedWindow window = pool->acquire_window();
        window.patient_id = tmpl.patient_id;
        window.window_index = tmpl.window_index;
        window.matrix_seed = tmpl.matrix_seed;
        window.window_samples = tmpl.window_samples;
        window.ones_per_column = tmpl.ones_per_column;
        window.priority = tmpl.priority;
        window.measurements.assign(tmpl.measurements.begin(), tmpl.measurements.end());
        window.reference.assign(tmpl.reference.begin(), tmpl.reference.end());
        fabric.submit(std::move(window));  // Blocking: nothing is shed.
        std::this_thread::yield();
      }
    });
  }

  std::map<WindowKey, std::vector<double>> streamed;
  std::thread poller([&] {
    while (retrieved.load(std::memory_order_acquire) < total_windows) {
      if (auto result = fabric.poll()) {
        streamed.emplace(WindowKey{result->patient_id, result->window_index},
                         std::vector<double>(result->signal));
        pool->recycle(std::move(*result));
        retrieved.fetch_add(1, std::memory_order_acq_rel);
      } else if (producers_done.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    }
  });

  // Elasticity churn while traffic and recycling are live.
  std::thread resizer([&] {
    const int plan[] = {3, 1, 4, 2};
    for (const int shards : plan) {
      (void)fabric.resize(shards);
      std::this_thread::yield();
      if (retrieved.load(std::memory_order_acquire) >= total_windows) break;
    }
  });

  for (auto& producer : producers) producer.join();
  producers_done.store(true, std::memory_order_release);
  resizer.join();
  poller.join();

  // Nothing lost, nothing duplicated, everything bit-identical.
  ASSERT_EQ(streamed.size(), total_windows);
  for (const auto& [key, signal] : streamed) {
    const auto found = expected.find(key);
    ASSERT_NE(found, expected.end());
    EXPECT_TRUE(bit_identical(found->second, signal))
        << "patient " << key.first << " window " << key.second;
  }

  // Counter conservation: every buffer the pool handed out (hit or miss)
  // was either recycled back or dropped at capacity; nothing vanished.
  const auto stats = pool->stats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
  EXPECT_GT(stats.recycled, 0u);
  EXPECT_EQ(stats.dropped, 0u);  // Capacity 1024 dwarfs this traffic.
}

}  // namespace
}  // namespace wbsn::host
