// Sharded fabric coverage: stable patient -> shard routing, composite
// tickets, aggregate/per-shard/per-lane SLO folding, and the acceptance
// bar of this layer — per-window results bit-identical across shard
// counts x priority mixes x thread counts (the determinism contract must
// not notice the fabric at all).
#include "host/reconstruction_fabric.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sig/ecg_synth.hpp"
#include "sig/rng.hpp"

namespace wbsn::host {
namespace {

RecordCompressionConfig fast_compression() {
  RecordCompressionConfig cfg;
  cfg.window_samples = 128;
  cfg.cr_percent = 50.0;
  return cfg;
}

EngineConfig fast_engine(int threads) {
  EngineConfig cfg;
  cfg.threads = threads;
  cfg.fista.max_iterations = 40;
  cfg.fista.debias_iterations = 10;
  return cfg;
}

/// Fleet traffic: `patients` single-lead records, each compressed into a
/// handful of windows, with `urgent_frac` of all windows tagged urgent by
/// a deterministic coin so every (shards, threads, frac) cell sees the
/// same priority assignment.
std::vector<CompressedWindow> fleet_batch(int patients, double urgent_frac) {
  std::vector<CompressedWindow> batch;
  for (int p = 0; p < patients; ++p) {
    sig::SynthConfig synth;
    synth.num_leads = 1;
    synth.episodes = {{sig::RhythmEpisode::Kind::kSinus, 6}};
    sig::Rng rng(0xFAB0000ULL + static_cast<std::uint64_t>(p));
    const auto record = synthesize_ecg(synth, rng);
    auto windows = compress_record(record, static_cast<std::uint32_t>(p), fast_compression());
    batch.insert(batch.end(), std::make_move_iterator(windows.begin()),
                 std::make_move_iterator(windows.end()));
  }
  sig::Rng coin(0x5EED5EEDULL);
  for (auto& window : batch) {
    window.priority = coin.uniform() < urgent_frac ? cs::WindowPriority::kUrgent
                                                   : cs::WindowPriority::kRoutine;
  }
  return batch;
}

using WindowKey = std::pair<std::uint32_t, std::uint32_t>;

bool bit_identical(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

std::map<WindowKey, WindowResult> by_identity(std::vector<WindowResult> results) {
  std::map<WindowKey, WindowResult> out;
  for (auto& r : results) {
    const WindowKey key{r.patient_id, r.window_index};
    EXPECT_TRUE(out.emplace(key, std::move(r)).second) << "duplicate result";
  }
  return out;
}

TEST(FabricRouting, ShardOfIsStableAndCoversAllShards) {
  FabricConfig cfg;
  cfg.shards = 4;
  ReconstructionFabric fabric(cfg);
  ASSERT_EQ(fabric.shard_count(), 4u);

  std::set<std::size_t> used;
  for (std::uint32_t id = 0; id < 256; ++id) {
    const std::size_t shard = fabric.shard_of(id);
    ASSERT_LT(shard, 4u);
    EXPECT_EQ(shard, fabric.shard_of(id)) << "routing must be stable";
    used.insert(shard);
  }
  EXPECT_EQ(used.size(), 4u) << "256 ids should touch every shard";
}

TEST(FabricRouting, CompositeTicketsRoundTripAndStayUnique) {
  // Epoch | shard | local bit fields round-trip independently, including
  // at each field's maximum value.
  const auto ticket = ReconstructionFabric::compose_ticket(5, 3, 41);
  EXPECT_EQ(ReconstructionFabric::ticket_epoch(ticket), 5u);
  EXPECT_EQ(ReconstructionFabric::ticket_shard(ticket), 3u);
  EXPECT_EQ(ReconstructionFabric::ticket_local(ticket), 41u);

  constexpr std::uint32_t kMaxEpoch = (1u << ReconstructionFabric::kEpochBits) - 1;
  constexpr std::size_t kMaxShard = (std::size_t{1} << ReconstructionFabric::kShardBits) - 1;
  constexpr std::uint64_t kMaxLocal =
      (std::uint64_t{1} << ReconstructionFabric::kLocalTicketBits) - 1;
  const auto max_ticket = ReconstructionFabric::compose_ticket(kMaxEpoch, kMaxShard, kMaxLocal);
  EXPECT_EQ(ReconstructionFabric::ticket_epoch(max_ticket), kMaxEpoch);
  EXPECT_EQ(ReconstructionFabric::ticket_shard(max_ticket), kMaxShard);
  EXPECT_EQ(ReconstructionFabric::ticket_local(max_ticket), kMaxLocal);
  EXPECT_EQ(max_ticket, ~std::uint64_t{0}) << "the three fields must tile all 64 bits";

  FabricConfig cfg;
  cfg.shards = 3;
  cfg.engine = fast_engine(0);
  ReconstructionFabric fabric(cfg);
  const auto batch = fleet_batch(6, 0.25);

  std::set<std::uint64_t> tickets;
  for (const auto& window : batch) {
    CompressedWindow copy = window;
    const auto ticket = fabric.try_submit(std::move(copy));
    ASSERT_TRUE(ticket.has_value());
    EXPECT_EQ(ReconstructionFabric::ticket_epoch(*ticket), fabric.epoch());
    EXPECT_EQ(ReconstructionFabric::ticket_shard(*ticket), fabric.shard_of(window.patient_id));
    EXPECT_TRUE(tickets.insert(*ticket).second) << "fabric tickets must be unique";
  }
  const auto results = fabric.drain();
  ASSERT_EQ(results.size(), batch.size());
  for (const auto& result : results) {
    EXPECT_TRUE(tickets.count(result.ticket)) << "result ticket must echo submission";
  }
}

TEST(FabricRouting, TicketsStayUniqueAcrossAnEpochBump) {
  // A shrink-then-grow recreates a shard index with a fresh engine whose
  // local tickets restart at 0: without the epoch tag the composite
  // tickets would collide.  Submit under three topologies and check the
  // full ticket set stays collision-free and every result echoes the
  // ticket its submission returned.
  FabricConfig cfg;
  cfg.shards = 3;
  cfg.engine = fast_engine(0);
  ReconstructionFabric fabric(cfg);
  const auto batch = fleet_batch(6, 0.0);

  std::set<std::uint64_t> tickets;
  const auto submit_all = [&] {
    for (const auto& window : batch) {
      CompressedWindow copy = window;
      const auto ticket = fabric.try_submit(std::move(copy));
      ASSERT_TRUE(ticket.has_value());
      EXPECT_EQ(ReconstructionFabric::ticket_epoch(*ticket), fabric.epoch());
      EXPECT_TRUE(tickets.insert(*ticket).second)
          << "composite tickets must stay unique across epochs";
    }
  };

  submit_all();  // Epoch 0, 3 shards.
  std::vector<WindowResult> results = fabric.drain();
  fabric.resize(1);  // Retires shards 1 and 2.
  submit_all();      // Epoch 1, 1 shard.
  for (auto&& r : fabric.drain()) results.push_back(std::move(r));
  fabric.resize(3);  // Shard indices 1 and 2 come back as fresh engines.
  ASSERT_EQ(fabric.epoch(), 2u);
  submit_all();  // Epoch 2: same shard indices, local tickets restart.
  for (auto&& r : fabric.drain()) results.push_back(std::move(r));

  ASSERT_EQ(results.size(), 3 * batch.size());
  ASSERT_EQ(tickets.size(), 3 * batch.size());
  for (const auto& result : results) {
    EXPECT_TRUE(tickets.count(result.ticket)) << "result ticket must echo its submission";
  }
}

TEST(FabricRouting, OldEpochTicketsStillPollCorrectlyAfterResize) {
  // Windows in flight across a resize complete where they started and
  // come back under the epoch-tagged ticket submit() returned — not one
  // re-stamped with the new epoch.
  FabricConfig cfg;
  cfg.shards = 4;
  cfg.engine = fast_engine(0);
  ReconstructionFabric fabric(cfg);
  const auto batch = fleet_batch(6, 0.0);

  std::map<std::uint64_t, WindowKey> submitted;
  for (const auto& window : batch) {
    CompressedWindow copy = window;
    const auto ticket = fabric.try_submit(std::move(copy));
    ASSERT_TRUE(ticket.has_value());
    EXPECT_EQ(ReconstructionFabric::ticket_epoch(*ticket), 0u);
    submitted.emplace(*ticket, WindowKey{window.patient_id, window.window_index});
  }

  // Serial engines solve during poll, so nothing has completed yet; the
  // resize (a shrink, so shards 2/3 retire holding this backlog) finishes
  // the movers' windows on their original shards.
  const auto report = fabric.resize(2);
  EXPECT_EQ(report.epoch, 1u);
  EXPECT_EQ(report.shards_before, 4u);
  EXPECT_EQ(report.shards_after, 2u);

  std::size_t polled = 0;
  while (auto result = fabric.poll()) {
    const auto found = submitted.find(result->ticket);
    ASSERT_NE(found, submitted.end())
        << "old-epoch ticket must survive the resize unchanged";
    EXPECT_EQ(ReconstructionFabric::ticket_epoch(result->ticket), 0u);
    EXPECT_EQ(found->second, (WindowKey{result->patient_id, result->window_index}));
    submitted.erase(found);
    ++polled;
  }
  EXPECT_EQ(polled, batch.size());
  EXPECT_TRUE(submitted.empty()) << "every pre-resize submission must come back";
}

TEST(FabricResize, MovesFewPatientsAndHandsOffSloHistory) {
  FabricConfig cfg;
  cfg.shards = 4;
  cfg.engine = fast_engine(2);
  ReconstructionFabric fabric(cfg);

  const auto batch = fleet_batch(12, 0.25);
  for (const auto& window : batch) {
    CompressedWindow copy = window;
    fabric.submit(std::move(copy));
  }
  const auto results = fabric.drain();
  ASSERT_EQ(results.size(), batch.size());
  const auto before = fabric.patient_slo_snapshots();
  ASSERT_EQ(before.size(), 12u);

  const auto report = fabric.resize(5);
  EXPECT_EQ(report.known_patients, 12u);
  EXPECT_LT(report.moved_patients, 12u) << "a grow must not re-route the whole fleet";
  EXPECT_EQ(report.slo_handoffs, report.moved_patients)
      << "every mover's SLO history must be handed off";

  // Routing now matches an independently built 5-shard ring, and movers
  // all landed on the shard the new ring says owns them.
  const HashRing ring5(5, static_cast<std::size_t>(cfg.vnodes_per_shard));
  std::size_t moved = 0;
  const HashRing ring4(4, static_cast<std::size_t>(cfg.vnodes_per_shard));
  for (std::uint32_t p = 0; p < 12; ++p) {
    EXPECT_EQ(fabric.shard_of(p), ring5.owner(p));
    moved += ring4.owner(p) != ring5.owner(p);
  }
  EXPECT_EQ(moved, report.moved_patients);

  // The per-patient breakdown is unchanged by the move: same patients,
  // same completed counts, each patient still on exactly one shard.
  const auto after = fabric.patient_slo_snapshots();
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(after[i].patient_id, before[i].patient_id);
    EXPECT_EQ(after[i].slo.completed, before[i].slo.completed)
        << "handoff must conserve patient " << before[i].patient_id << "'s history";
  }
  const auto aggregate = fabric.slo_snapshot();
  EXPECT_EQ(aggregate.submitted, batch.size());
  EXPECT_EQ(aggregate.completed, batch.size());
}

// The acceptance bar: randomized fleet traffic, submitted in shuffled
// order, must reconstruct bit-identically across every combination of
// shard count, priority mix, and thread count — the serial single-engine
// run is the one reference for all of them.
TEST(FabricDeterminism, BitIdenticalAcrossShardsPriorityMixesAndThreads) {
  for (const double urgent_frac : {0.0, 0.35, 1.0}) {
    const auto batch = fleet_batch(5, urgent_frac);

    ReconstructionEngine serial(fast_engine(0));
    const auto reference = by_identity(std::move(serial.reconstruct(batch).windows));
    ASSERT_EQ(reference.size(), batch.size());

    // Deterministically shuffled arrival order, shared by every cell.
    std::vector<std::size_t> order(batch.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    sig::Rng rng(0xD15C0ULL + static_cast<std::uint64_t>(urgent_frac * 100));
    for (std::size_t i = order.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(order[i - 1], order[j]);
    }

    for (const int shards : {1, 2, 4}) {
      for (const int threads : {0, 2}) {
        FabricConfig cfg;
        cfg.shards = shards;
        cfg.engine = fast_engine(threads);
        ReconstructionFabric fabric(cfg);
        for (const std::size_t i : order) {
          CompressedWindow copy = batch[i];
          fabric.submit(std::move(copy));
        }
        const auto keyed = by_identity(fabric.drain());
        ASSERT_EQ(keyed.size(), reference.size())
            << "shards=" << shards << " threads=" << threads << " frac=" << urgent_frac;
        for (const auto& [key, expected] : reference) {
          const auto found = keyed.find(key);
          ASSERT_NE(found, keyed.end());
          EXPECT_TRUE(bit_identical(found->second.signal, expected.signal))
              << "patient " << key.first << " window " << key.second << " differs at shards="
              << shards << " threads=" << threads << " frac=" << urgent_frac;
          EXPECT_EQ(found->second.iterations, expected.iterations);
          EXPECT_EQ(found->second.snr_db, expected.snr_db);
        }
      }
    }
  }
}

TEST(FabricSlo, AggregateFoldsEveryShardAndLanesSplitTraffic) {
  FabricConfig cfg;
  cfg.shards = 4;
  cfg.engine = fast_engine(2);
  ReconstructionFabric fabric(cfg);

  const auto batch = fleet_batch(6, 0.4);
  std::size_t urgent = 0;
  for (const auto& window : batch) urgent += window.priority == cs::WindowPriority::kUrgent;
  ASSERT_GT(urgent, 0u);
  ASSERT_LT(urgent, batch.size());

  for (const auto& window : batch) {
    CompressedWindow copy = window;
    fabric.submit(std::move(copy));
  }
  const auto results = fabric.drain();
  ASSERT_EQ(results.size(), batch.size());

  const auto aggregate = fabric.slo_snapshot();
  EXPECT_EQ(aggregate.submitted, batch.size());
  EXPECT_EQ(aggregate.completed, batch.size());
  EXPECT_EQ(aggregate.in_flight, 0u);
  EXPECT_GT(aggregate.p50_ms, 0.0);
  EXPECT_LE(aggregate.p50_ms, aggregate.p99_ms);

  // Aggregate == sum over per-shard snapshots, and every window went to
  // its patient's shard.
  const auto per_shard = fabric.shard_slo_snapshots();
  ASSERT_EQ(per_shard.size(), 4u);
  std::uint64_t shard_total = 0;
  for (const auto& s : per_shard) shard_total += s.slo.completed;
  EXPECT_EQ(shard_total, aggregate.completed);

  const auto urgent_lane = fabric.lane_slo_snapshot(cs::WindowPriority::kUrgent);
  const auto routine_lane = fabric.lane_slo_snapshot(cs::WindowPriority::kRoutine);
  EXPECT_EQ(urgent_lane.completed, urgent);
  EXPECT_EQ(routine_lane.completed, batch.size() - urgent);

  // Per-patient: one entry per patient, sorted, each on exactly one shard.
  const auto per_patient = fabric.patient_slo_snapshots();
  ASSERT_EQ(per_patient.size(), 6u);
  std::uint64_t patient_total = 0;
  for (std::size_t i = 0; i < per_patient.size(); ++i) {
    if (i > 0) {
      EXPECT_LT(per_patient[i - 1].patient_id, per_patient[i].patient_id);
    }
    patient_total += per_patient[i].slo.completed;
  }
  EXPECT_EQ(patient_total, batch.size());
}

TEST(FabricBatch, ReconstructRestoresInputOrderAndMatchesEngine) {
  const auto batch = fleet_batch(5, 0.3);

  ReconstructionEngine serial(fast_engine(0));
  const auto reference = serial.reconstruct(batch);

  FabricConfig cfg;
  cfg.shards = 3;
  cfg.engine = fast_engine(2);
  ReconstructionFabric fabric(cfg);
  const auto result = fabric.reconstruct(batch);

  ASSERT_EQ(result.windows.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(result.windows[i].patient_id, batch[i].patient_id);
    EXPECT_EQ(result.windows[i].window_index, batch[i].window_index);
    EXPECT_TRUE(bit_identical(result.windows[i].signal, reference.windows[i].signal))
        << "window " << i;
  }
  ASSERT_EQ(result.patients.size(), reference.patients.size());
  for (std::size_t p = 0; p < result.patients.size(); ++p) {
    EXPECT_EQ(result.patients[p].patient_id, reference.patients[p].patient_id);
    EXPECT_EQ(result.patients[p].windows, reference.patients[p].windows);
    EXPECT_DOUBLE_EQ(result.patients[p].mean_snr_db, reference.patients[p].mean_snr_db);
  }
}

TEST(FabricBackpressure, TrySubmitBouncesOnlyTheOwningShard) {
  FabricConfig cfg;
  cfg.shards = 2;
  cfg.engine = fast_engine(0);
  cfg.engine.queue_capacity = 1;
  ReconstructionFabric fabric(cfg);

  const auto batch = fleet_batch(8, 0.0);
  // Find two patients on different shards.
  std::uint32_t on_zero = 0, on_one = 0;
  bool found_zero = false, found_one = false;
  for (const auto& window : batch) {
    (fabric.shard_of(window.patient_id) == 0 ? found_zero : found_one) = true;
    (fabric.shard_of(window.patient_id) == 0 ? on_zero : on_one) = window.patient_id;
  }
  ASSERT_TRUE(found_zero && found_one) << "8 patients must span both shards";

  const auto window_for = [&](std::uint32_t patient) {
    for (const auto& w : batch) {
      if (w.patient_id == patient) return w;
    }
    return batch.front();
  };

  CompressedWindow a = window_for(on_zero);
  CompressedWindow b = window_for(on_zero);
  CompressedWindow c = window_for(on_one);
  ASSERT_TRUE(fabric.try_submit(std::move(a)).has_value());
  EXPECT_FALSE(fabric.try_submit(std::move(b)).has_value())
      << "owning shard full: must bounce even though the other shard is idle";
  EXPECT_TRUE(fabric.try_submit(std::move(c)).has_value())
      << "the other shard's admission gate is independent";
  EXPECT_EQ(fabric.drain().size(), 2u);
  EXPECT_EQ(fabric.slo_snapshot().rejected, 1u);
}

TEST(FabricFailover, FailShardRehomesOnlyDeadPatientsAndAccountsLoss) {
  FabricConfig cfg;
  cfg.shards = 3;
  cfg.engine = fast_engine(0);
  ReconstructionFabric fabric(cfg);
  const auto batch = fleet_batch(9, 0.25);

  // Serial single-engine reference for the whole fleet: the survivors'
  // results must match it bit-for-bit after the crash.
  ReconstructionEngine serial(fast_engine(0));
  const auto reference = by_identity(std::move(serial.reconstruct(batch).windows));
  ASSERT_EQ(reference.size(), batch.size());

  // Phase 1: a full round trip so every shard — including the one about
  // to die — holds retrieved history when it crashes.
  for (const auto& window : batch) {
    CompressedWindow copy = window;
    fabric.submit(std::move(copy));
  }
  ASSERT_EQ(fabric.drain().size(), batch.size());

  // Phase 2: the same traffic again, nothing polled.  Everything routed
  // to shard 1 is about to be destroyed with it.
  constexpr std::size_t kDead = 1;
  std::uint64_t lost_expected = 0;
  std::uint64_t dead_retrieved_phase1 = 0;
  std::set<std::uint32_t> dead_patients;
  std::set<WindowKey> lost_keys;
  for (const auto& window : batch) {
    const std::size_t owner = fabric.shard_of(window.patient_id);
    CompressedWindow copy = window;
    fabric.submit(std::move(copy));
    if (owner == kDead) {
      ++lost_expected;
      ++dead_retrieved_phase1;  // Same routing in phase 1, all retrieved.
      dead_patients.insert(window.patient_id);
      lost_keys.insert({window.patient_id, window.window_index});
    }
  }
  ASSERT_GT(lost_expected, 0u) << "9 patients must put traffic on shard 1";
  ASSERT_LT(lost_expected, batch.size());

  const HashRing ring_before(3, static_cast<std::size_t>(cfg.vnodes_per_shard));
  const auto report = fabric.fail_shard(kDead);
  EXPECT_EQ(report.epoch, 1u);
  EXPECT_EQ(report.failed_shard, kDead);
  EXPECT_EQ(report.live_shards, 2u);
  EXPECT_EQ(report.moved_patients, dead_patients.size());
  EXPECT_EQ(report.lost_windows, lost_expected);
  EXPECT_EQ(fabric.epoch(), 1u);
  EXPECT_EQ(fabric.live_shard_count(), 2u);
  EXPECT_EQ(fabric.shard_count(), 3u) << "the dead slot stays a hole (ticket identity)";
  EXPECT_THROW(fabric.shard(kDead), std::out_of_range);
  EXPECT_THROW(fabric.fail_shard(kDead), std::out_of_range) << "a hole cannot fail twice";

  // Subset routing: exactly the dead shard's patients re-home — matching
  // an independently built survivors ring — and every other patient stays
  // where it was.
  const HashRing survivors({0, 2}, static_cast<std::size_t>(cfg.vnodes_per_shard));
  for (const auto& window : batch) {
    const std::size_t now = fabric.shard_of(window.patient_id);
    EXPECT_NE(now, kDead);
    EXPECT_EQ(now, survivors.owner(window.patient_id));
    if (dead_patients.count(window.patient_id) == 0) {
      EXPECT_EQ(now, ring_before.owner(window.patient_id))
          << "patient " << window.patient_id << " must not move in a failover";
    }
  }

  // The survivors' backlog is intact and bit-identical to the serial
  // reference; the dead shard's windows are gone — exactly the lost set.
  const auto keyed = by_identity(fabric.drain());
  ASSERT_EQ(keyed.size(), batch.size() - lost_expected);
  for (const auto& [key, expected] : reference) {
    const auto found = keyed.find(key);
    if (lost_keys.count(key) != 0) {
      EXPECT_EQ(found, keyed.end()) << "lost window must not reappear";
      continue;
    }
    ASSERT_NE(found, keyed.end());
    EXPECT_TRUE(bit_identical(found->second.signal, expected.signal))
        << "patient " << key.first << " window " << key.second << " differs after failover";
    EXPECT_EQ(found->second.iterations, expected.iterations);
    EXPECT_EQ(found->second.snr_db, expected.snr_db);
  }

  // Crash-proof conservation: every window ever admitted is accounted
  // exactly once, with the dead shard's unretrieved backlog in `lost`.
  const auto agg = fabric.slo_snapshot();
  EXPECT_EQ(agg.submitted, 2 * batch.size());
  EXPECT_EQ(agg.lost, lost_expected);
  EXPECT_EQ(agg.completed, 2 * batch.size() - lost_expected);
  EXPECT_EQ(agg.in_flight, 0u);
  EXPECT_EQ(agg.submitted, agg.completed + agg.shed_routine + agg.shed_urgent + agg.lost +
                               agg.in_flight);

  // Per-shard snapshots skip the hole; lane snapshots do not fold the
  // failed accumulators (a dead shard's lane split below the shed/lost
  // line is unknowable), so the lanes sum to the live+reaped completions.
  const auto per_shard = fabric.shard_slo_snapshots();
  ASSERT_EQ(per_shard.size(), 2u);
  EXPECT_EQ(per_shard[0].shard, 0u);
  EXPECT_EQ(per_shard[1].shard, 2u);
  const auto urgent_lane = fabric.lane_slo_snapshot(cs::WindowPriority::kUrgent);
  const auto routine_lane = fabric.lane_slo_snapshot(cs::WindowPriority::kRoutine);
  EXPECT_EQ(urgent_lane.completed + routine_lane.completed,
            agg.completed - dead_retrieved_phase1);

  // The fleet keeps serving: a re-homed patient's window submits under
  // the failover epoch onto a survivor and solves bit-identically.
  const std::uint32_t rehomed = *dead_patients.begin();
  for (const auto& window : batch) {
    if (window.patient_id != rehomed) continue;
    CompressedWindow copy = window;
    const std::uint64_t ticket = fabric.submit(std::move(copy));
    EXPECT_EQ(ReconstructionFabric::ticket_epoch(ticket), 1u);
    EXPECT_NE(ReconstructionFabric::ticket_shard(ticket), kDead);
    break;
  }
  const auto after = fabric.drain();
  ASSERT_EQ(after.size(), 1u);
  const auto expected = reference.find({after[0].patient_id, after[0].window_index});
  ASSERT_NE(expected, reference.end());
  EXPECT_TRUE(bit_identical(after[0].signal, expected->second.signal));
}

TEST(FabricFailover, ResizeReprovisionsTheCrashHole) {
  FabricConfig cfg;
  cfg.shards = 3;
  cfg.engine = fast_engine(0);
  ReconstructionFabric fabric(cfg);
  const auto batch = fleet_batch(9, 0.0);

  for (const auto& window : batch) {
    CompressedWindow copy = window;
    fabric.submit(std::move(copy));
  }
  std::uint64_t lost_expected = 0;
  for (const auto& window : batch) lost_expected += fabric.shard_of(window.patient_id) == 1;
  ASSERT_GT(lost_expected, 0u);
  fabric.fail_shard(1);
  ASSERT_EQ(fabric.live_shard_count(), 2u);

  // resize() is the recovery path: the hole gets a fresh engine and the
  // full ring comes back, so routing matches a plain 3-shard fabric again.
  const auto report = fabric.resize(3);
  EXPECT_EQ(report.epoch, 2u);
  EXPECT_EQ(report.shards_before, 3u);
  EXPECT_EQ(report.shards_after, 3u);
  EXPECT_EQ(fabric.live_shard_count(), 3u);
  EXPECT_NO_THROW(fabric.shard(1));
  const HashRing ring3(3, static_cast<std::size_t>(cfg.vnodes_per_shard));
  for (const auto& window : batch) {
    EXPECT_EQ(fabric.shard_of(window.patient_id), ring3.owner(window.patient_id));
  }

  // The re-provisioned shard serves, and the crash's losses stay on the
  // books: conservation holds across fail + resize + another round trip.
  for (const auto& window : batch) {
    CompressedWindow copy = window;
    fabric.submit(std::move(copy));
  }
  EXPECT_EQ(fabric.drain().size(), 2 * batch.size() - lost_expected);
  const auto agg = fabric.slo_snapshot();
  EXPECT_EQ(agg.submitted, 2 * batch.size());
  EXPECT_EQ(agg.lost, lost_expected);
  EXPECT_EQ(agg.submitted, agg.completed + agg.shed_routine + agg.shed_urgent + agg.lost +
                               agg.in_flight);
}

TEST(FabricFailover, LastSurvivorCannotFailAndKeepsServing) {
  FabricConfig cfg;
  cfg.shards = 2;
  cfg.engine = fast_engine(0);
  ReconstructionFabric fabric(cfg);

  EXPECT_THROW(fabric.fail_shard(5), std::out_of_range);
  fabric.fail_shard(0);
  EXPECT_THROW(fabric.fail_shard(0), std::out_of_range);
  EXPECT_THROW(fabric.fail_shard(1), std::invalid_argument)
      << "the last survivor must keep the fleet alive";
  EXPECT_EQ(fabric.live_shard_count(), 1u);

  const auto batch = fleet_batch(3, 0.0);
  for (const auto& window : batch) {
    CompressedWindow copy = window;
    const std::uint64_t ticket = fabric.submit(std::move(copy));
    EXPECT_EQ(ReconstructionFabric::ticket_shard(ticket), 1u);
  }
  EXPECT_EQ(fabric.drain().size(), batch.size());
  EXPECT_EQ(fabric.slo_snapshot().lost, 0u) << "an empty shard dies with nothing to lose";
}

}  // namespace
}  // namespace wbsn::host
