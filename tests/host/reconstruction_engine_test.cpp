#include "host/reconstruction_engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <map>
#include <set>
#include <utility>

#include "cs/sensing_matrix.hpp"
#include "host/work_queue.hpp"
#include "sig/ecg_synth.hpp"
#include "sig/rng.hpp"

namespace wbsn::host {
namespace {

// Small, fast workload: short windows and a truncated solver so the full
// thread-count sweep stays cheap in Debug/ASan CI jobs.
RecordCompressionConfig fast_compression() {
  RecordCompressionConfig cfg;
  cfg.window_samples = 128;
  cfg.cr_percent = 50.0;
  return cfg;
}

EngineConfig fast_engine(int threads) {
  EngineConfig cfg;
  cfg.threads = threads;
  cfg.fista.max_iterations = 40;
  cfg.fista.debias_iterations = 10;
  return cfg;
}

sig::Record make_record(std::uint64_t seed, int beats) {
  sig::SynthConfig synth;
  synth.num_leads = 2;
  synth.episodes = {{sig::RhythmEpisode::Kind::kSinus, beats}};
  sig::Rng rng(seed);
  return synthesize_ecg(synth, rng);
}

std::vector<CompressedWindow> two_patient_batch() {
  auto batch = compress_record(make_record(11, 8), /*patient_id=*/1,
                               fast_compression());
  auto more = compress_record(make_record(22, 8), /*patient_id=*/2,
                              fast_compression());
  batch.insert(batch.end(), std::make_move_iterator(more.begin()),
               std::make_move_iterator(more.end()));
  return batch;
}

bool bit_identical(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

TEST(CompressRecord, EmitsOneItemPerFullWindowPerLead) {
  const auto record = make_record(7, 10);
  const auto cfg = fast_compression();
  const auto batch = compress_record(record, 42, cfg);

  const std::size_t per_lead = record.num_samples() / cfg.window_samples;
  ASSERT_EQ(batch.size(), per_lead * record.num_leads());

  const std::size_t m = cs::rows_for_cr(cfg.cr_percent, cfg.window_samples);
  std::set<std::uint32_t> indices;
  for (const auto& w : batch) {
    EXPECT_EQ(w.patient_id, 42u);
    EXPECT_EQ(w.window_samples, cfg.window_samples);
    EXPECT_EQ(w.measurements.size(), m);
    EXPECT_EQ(w.reference.size(), cfg.window_samples);
    indices.insert(w.window_index);
  }
  EXPECT_EQ(indices.size(), batch.size()) << "window_index must be unique";
}

TEST(ReconstructionEngine, EmptyBatch) {
  ReconstructionEngine engine(fast_engine(2));
  const auto result = engine.reconstruct({});
  EXPECT_TRUE(result.windows.empty());
  EXPECT_TRUE(result.patients.empty());
  EXPECT_EQ(result.records_per_second, 0.0);
}

TEST(ReconstructionEngine, BitIdenticalAcrossThreadCounts) {
  const auto batch = two_patient_batch();

  ReconstructionEngine serial(fast_engine(0));
  const auto reference = serial.reconstruct(batch);
  ASSERT_EQ(reference.windows.size(), batch.size());

  for (const int threads : {1, 3}) {
    ReconstructionEngine engine(fast_engine(threads));
    const auto result = engine.reconstruct(batch);
    ASSERT_EQ(result.windows.size(), reference.windows.size());
    for (std::size_t i = 0; i < result.windows.size(); ++i) {
      EXPECT_TRUE(bit_identical(result.windows[i].signal,
                                reference.windows[i].signal))
          << "window " << i << " differs at threads=" << threads;
      EXPECT_EQ(result.windows[i].iterations, reference.windows[i].iterations);
      EXPECT_EQ(result.windows[i].snr_db, reference.windows[i].snr_db);
    }
  }
}

TEST(ReconstructionEngine, OversubscribedQueueStillCompletes) {
  auto cfg = fast_engine(2);
  cfg.queue_capacity = 2;  // Far smaller than the batch: forces backpressure.
  ReconstructionEngine engine(cfg);

  const auto batch = two_patient_batch();
  ASSERT_GT(batch.size(), engine.thread_count() * 4u);
  const auto result = engine.reconstruct(batch);

  ASSERT_EQ(result.windows.size(), batch.size());
  for (std::size_t i = 0; i < result.windows.size(); ++i) {
    EXPECT_EQ(result.windows[i].signal.size(), batch[i].window_samples)
        << "window " << i << " was dropped or truncated";
  }
}

TEST(ReconstructionEngine, PerPatientStats) {
  const auto batch = two_patient_batch();
  ReconstructionEngine engine(fast_engine(2));
  const auto result = engine.reconstruct(batch);

  ASSERT_EQ(result.patients.size(), 2u);
  EXPECT_EQ(result.patients[0].patient_id, 1u);
  EXPECT_EQ(result.patients[1].patient_id, 2u);
  std::size_t total = 0;
  for (const auto& p : result.patients) {
    total += p.windows;
    EXPECT_TRUE(std::isfinite(p.mean_snr_db));
    EXPECT_GT(p.mean_snr_db, 0.0) << "reconstruction should beat 0 dB";
    EXPECT_GE(p.max_latency_ms, p.mean_latency_ms * 0.999);
    EXPECT_GT(p.mean_latency_ms, 0.0);
  }
  EXPECT_EQ(total, batch.size());
  EXPECT_GT(result.records_per_second, 0.0);
}

TEST(ReconstructionEngine, NoReferenceMeansNanSnr) {
  auto cfg = fast_compression();
  cfg.keep_reference = false;
  const auto batch = compress_record(make_record(5, 6), 9, cfg);
  ASSERT_FALSE(batch.empty());

  ReconstructionEngine engine(fast_engine(1));
  const auto result = engine.reconstruct(batch);
  for (const auto& w : result.windows) EXPECT_TRUE(std::isnan(w.snr_db));
  ASSERT_EQ(result.patients.size(), 1u);
  EXPECT_TRUE(std::isnan(result.patients[0].mean_snr_db));
}

TEST(ReconstructionEngine, ReusableAcrossBatches) {
  ReconstructionEngine engine(fast_engine(2));
  const auto batch = two_patient_batch();
  const auto first = engine.reconstruct(batch);
  const auto second = engine.reconstruct(batch);  // Matrix cache hit path.
  ASSERT_EQ(first.windows.size(), second.windows.size());
  for (std::size_t i = 0; i < first.windows.size(); ++i) {
    EXPECT_TRUE(
        bit_identical(first.windows[i].signal, second.windows[i].signal));
  }
}

// --- Streaming interface ----------------------------------------------------

// Key results by identity so completion-order outputs can be compared to an
// input-order reference.
using WindowKey = std::pair<std::uint32_t, std::uint32_t>;

std::map<WindowKey, WindowResult> by_identity(std::vector<WindowResult> results) {
  std::map<WindowKey, WindowResult> out;
  for (auto& r : results) {
    const WindowKey key{r.patient_id, r.window_index};
    EXPECT_TRUE(out.emplace(key, std::move(r)).second) << "duplicate result";
  }
  return out;
}

TEST(StreamingEngine, SubmitPollDrainDeliversEverything) {
  const auto batch = two_patient_batch();
  ReconstructionEngine engine(fast_engine(2));

  std::vector<WindowResult> results;
  std::uint64_t last_ticket = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    CompressedWindow copy = batch[i];
    const std::uint64_t ticket = engine.submit(std::move(copy));
    EXPECT_TRUE(i == 0 || ticket > last_ticket) << "tickets must be monotonic";
    last_ticket = ticket;
    if (auto r = engine.poll()) results.push_back(std::move(*r));  // Opportunistic.
  }
  auto rest = engine.drain();
  results.insert(results.end(), std::make_move_iterator(rest.begin()),
                 std::make_move_iterator(rest.end()));

  ASSERT_EQ(results.size(), batch.size());
  EXPECT_EQ(engine.in_flight(), 0u);
  const auto keyed = by_identity(std::move(results));
  for (const auto& window : batch) {
    const auto found = keyed.find({window.patient_id, window.window_index});
    ASSERT_NE(found, keyed.end());
    EXPECT_EQ(found->second.signal.size(), window.window_samples);
    EXPECT_GE(found->second.e2e_ms, found->second.latency_ms)
        << "enqueue->complete includes queue wait";
  }
}

TEST(StreamingEngine, SerialModePollSolvesInline) {
  const auto batch = two_patient_batch();
  ReconstructionEngine engine(fast_engine(0));
  ASSERT_EQ(engine.thread_count(), 0);

  for (const auto& window : batch) {
    CompressedWindow copy = window;
    ASSERT_TRUE(engine.try_submit(std::move(copy)).has_value());
    const auto result = engine.poll();  // Solves this window in this thread.
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->signal.size(), window.window_samples);
  }
  EXPECT_EQ(engine.in_flight(), 0u);
  EXPECT_FALSE(engine.poll().has_value());
}

TEST(StreamingEngine, TrySubmitAppliesBackpressureAtCapacity) {
  auto cfg = fast_engine(0);
  cfg.queue_capacity = 2;
  ReconstructionEngine engine(cfg);
  ASSERT_EQ(engine.in_flight_capacity(), 2u);

  const auto batch = two_patient_batch();
  ASSERT_GE(batch.size(), 3u);
  CompressedWindow a = batch[0], b = batch[1], c = batch[2];
  ASSERT_TRUE(engine.try_submit(std::move(a)).has_value());
  ASSERT_TRUE(engine.try_submit(std::move(b)).has_value());
  EXPECT_EQ(engine.in_flight(), 2u);

  EXPECT_FALSE(engine.try_submit(std::move(c)).has_value()) << "third must bounce";
  EXPECT_EQ(c.measurements.size(), batch[2].measurements.size())
      << "rejected window must be left intact";

  ASSERT_TRUE(engine.poll().has_value());  // Frees one slot.
  EXPECT_TRUE(engine.try_submit(std::move(c)).has_value());
  EXPECT_EQ(engine.drain().size(), 2u);
}

TEST(StreamingEngine, DeterministicAcrossThreadsAndSubmissionOrder) {
  const auto batch = two_patient_batch();

  ReconstructionEngine serial(fast_engine(0));
  const auto reference = by_identity(std::move(serial.reconstruct(batch).windows));

  // Shuffle the submission order deterministically and stream with workers:
  // per-window outputs must stay bit-identical.
  std::vector<std::size_t> order(batch.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  sig::Rng rng(0xD150FDE5ULL);
  for (std::size_t i = order.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(order[i - 1], order[j]);
  }

  for (const int threads : {1, 3}) {
    ReconstructionEngine engine(fast_engine(threads));
    for (const std::size_t i : order) {
      CompressedWindow copy = batch[i];
      engine.submit(std::move(copy));
    }
    const auto keyed = by_identity(engine.drain());
    ASSERT_EQ(keyed.size(), reference.size()) << "threads=" << threads;
    for (const auto& [key, expected] : reference) {
      const auto found = keyed.find(key);
      ASSERT_NE(found, keyed.end());
      EXPECT_TRUE(bit_identical(found->second.signal, expected.signal))
          << "patient " << key.first << " window " << key.second
          << " differs at threads=" << threads;
      EXPECT_EQ(found->second.iterations, expected.iterations);
      EXPECT_EQ(found->second.snr_db, expected.snr_db);
    }
  }
}

TEST(StreamingEngine, SloTracksLatencyThroughputAndDeadlines) {
  auto cfg = fast_engine(2);
  cfg.slo.deadline_ms = 1e-6;  // Absurdly tight: every window must violate.
  ReconstructionEngine engine(cfg);

  const auto batch = two_patient_batch();
  for (const auto& window : batch) {
    CompressedWindow copy = window;
    engine.submit(std::move(copy));
  }
  const auto results = engine.drain();
  ASSERT_EQ(results.size(), batch.size());

  const auto snap = engine.slo().snapshot();
  EXPECT_EQ(snap.submitted, batch.size());
  EXPECT_EQ(snap.completed, batch.size());
  EXPECT_EQ(snap.in_flight, 0u);
  EXPECT_GE(snap.max_in_flight, 1u);
  EXPECT_EQ(snap.deadline_violations, batch.size());
  EXPECT_GT(snap.p50_ms, 0.0);
  EXPECT_LE(snap.p50_ms, snap.p99_ms);
  EXPECT_GT(snap.throughput_per_s, 0.0);
  EXPECT_GT(snap.mean_ms, 0.0);
}

TEST(StreamingEngine, BatchWrapperMatchesStreamingResults) {
  const auto batch = two_patient_batch();
  ReconstructionEngine batch_engine(fast_engine(2));
  const auto wrapped = batch_engine.reconstruct(batch);

  ReconstructionEngine stream_engine(fast_engine(2));
  for (const auto& window : batch) {
    CompressedWindow copy = window;
    stream_engine.submit(std::move(copy));
  }
  const auto keyed = by_identity(stream_engine.drain());

  ASSERT_EQ(wrapped.windows.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    // The wrapper restores input order.
    EXPECT_EQ(wrapped.windows[i].patient_id, batch[i].patient_id);
    EXPECT_EQ(wrapped.windows[i].window_index, batch[i].window_index);
    const auto found = keyed.find({batch[i].patient_id, batch[i].window_index});
    ASSERT_NE(found, keyed.end());
    EXPECT_TRUE(bit_identical(wrapped.windows[i].signal, found->second.signal));
  }
}

}  // namespace
}  // namespace wbsn::host
