#include "host/reconstruction_engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <set>

#include "cs/sensing_matrix.hpp"
#include "host/work_queue.hpp"
#include "sig/ecg_synth.hpp"
#include "sig/rng.hpp"

namespace wbsn::host {
namespace {

// Small, fast workload: short windows and a truncated solver so the full
// thread-count sweep stays cheap in Debug/ASan CI jobs.
RecordCompressionConfig fast_compression() {
  RecordCompressionConfig cfg;
  cfg.window_samples = 128;
  cfg.cr_percent = 50.0;
  return cfg;
}

EngineConfig fast_engine(int threads) {
  EngineConfig cfg;
  cfg.threads = threads;
  cfg.fista.max_iterations = 40;
  cfg.fista.debias_iterations = 10;
  return cfg;
}

sig::Record make_record(std::uint64_t seed, int beats) {
  sig::SynthConfig synth;
  synth.num_leads = 2;
  synth.episodes = {{sig::RhythmEpisode::Kind::kSinus, beats}};
  sig::Rng rng(seed);
  return synthesize_ecg(synth, rng);
}

std::vector<CompressedWindow> two_patient_batch() {
  auto batch = compress_record(make_record(11, 8), /*patient_id=*/1,
                               fast_compression());
  auto more = compress_record(make_record(22, 8), /*patient_id=*/2,
                              fast_compression());
  batch.insert(batch.end(), std::make_move_iterator(more.begin()),
               std::make_move_iterator(more.end()));
  return batch;
}

bool bit_identical(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

TEST(WorkQueue, FifoSingleThreaded) {
  BoundedWorkQueue<std::size_t> q(8);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_TRUE(q.try_push(i));
  std::size_t out = 0;
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.try_pop(out));
}

TEST(WorkQueue, ReportsFullAndRoundsCapacityUp) {
  BoundedWorkQueue<int> q(3);  // Rounds up to 4.
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(99));
  int out = 0;
  EXPECT_TRUE(q.try_pop(out));
  EXPECT_TRUE(q.try_push(99));  // Slot freed.
}

TEST(CompressRecord, EmitsOneItemPerFullWindowPerLead) {
  const auto record = make_record(7, 10);
  const auto cfg = fast_compression();
  const auto batch = compress_record(record, 42, cfg);

  const std::size_t per_lead = record.num_samples() / cfg.window_samples;
  ASSERT_EQ(batch.size(), per_lead * record.num_leads());

  const std::size_t m = cs::rows_for_cr(cfg.cr_percent, cfg.window_samples);
  std::set<std::uint32_t> indices;
  for (const auto& w : batch) {
    EXPECT_EQ(w.patient_id, 42u);
    EXPECT_EQ(w.window_samples, cfg.window_samples);
    EXPECT_EQ(w.measurements.size(), m);
    EXPECT_EQ(w.reference.size(), cfg.window_samples);
    indices.insert(w.window_index);
  }
  EXPECT_EQ(indices.size(), batch.size()) << "window_index must be unique";
}

TEST(ReconstructionEngine, EmptyBatch) {
  ReconstructionEngine engine(fast_engine(2));
  const auto result = engine.reconstruct({});
  EXPECT_TRUE(result.windows.empty());
  EXPECT_TRUE(result.patients.empty());
  EXPECT_EQ(result.records_per_second, 0.0);
}

TEST(ReconstructionEngine, BitIdenticalAcrossThreadCounts) {
  const auto batch = two_patient_batch();

  ReconstructionEngine serial(fast_engine(0));
  const auto reference = serial.reconstruct(batch);
  ASSERT_EQ(reference.windows.size(), batch.size());

  for (const int threads : {1, 3}) {
    ReconstructionEngine engine(fast_engine(threads));
    const auto result = engine.reconstruct(batch);
    ASSERT_EQ(result.windows.size(), reference.windows.size());
    for (std::size_t i = 0; i < result.windows.size(); ++i) {
      EXPECT_TRUE(bit_identical(result.windows[i].signal,
                                reference.windows[i].signal))
          << "window " << i << " differs at threads=" << threads;
      EXPECT_EQ(result.windows[i].iterations, reference.windows[i].iterations);
      EXPECT_EQ(result.windows[i].snr_db, reference.windows[i].snr_db);
    }
  }
}

TEST(ReconstructionEngine, OversubscribedQueueStillCompletes) {
  auto cfg = fast_engine(2);
  cfg.queue_capacity = 2;  // Far smaller than the batch: forces backpressure.
  ReconstructionEngine engine(cfg);

  const auto batch = two_patient_batch();
  ASSERT_GT(batch.size(), engine.thread_count() * 4u);
  const auto result = engine.reconstruct(batch);

  ASSERT_EQ(result.windows.size(), batch.size());
  for (std::size_t i = 0; i < result.windows.size(); ++i) {
    EXPECT_EQ(result.windows[i].signal.size(), batch[i].window_samples)
        << "window " << i << " was dropped or truncated";
  }
}

TEST(ReconstructionEngine, PerPatientStats) {
  const auto batch = two_patient_batch();
  ReconstructionEngine engine(fast_engine(2));
  const auto result = engine.reconstruct(batch);

  ASSERT_EQ(result.patients.size(), 2u);
  EXPECT_EQ(result.patients[0].patient_id, 1u);
  EXPECT_EQ(result.patients[1].patient_id, 2u);
  std::size_t total = 0;
  for (const auto& p : result.patients) {
    total += p.windows;
    EXPECT_TRUE(std::isfinite(p.mean_snr_db));
    EXPECT_GT(p.mean_snr_db, 0.0) << "reconstruction should beat 0 dB";
    EXPECT_GE(p.max_latency_ms, p.mean_latency_ms * 0.999);
    EXPECT_GT(p.mean_latency_ms, 0.0);
  }
  EXPECT_EQ(total, batch.size());
  EXPECT_GT(result.records_per_second, 0.0);
}

TEST(ReconstructionEngine, NoReferenceMeansNanSnr) {
  auto cfg = fast_compression();
  cfg.keep_reference = false;
  const auto batch = compress_record(make_record(5, 6), 9, cfg);
  ASSERT_FALSE(batch.empty());

  ReconstructionEngine engine(fast_engine(1));
  const auto result = engine.reconstruct(batch);
  for (const auto& w : result.windows) EXPECT_TRUE(std::isnan(w.snr_db));
  ASSERT_EQ(result.patients.size(), 1u);
  EXPECT_TRUE(std::isnan(result.patients[0].mean_snr_db));
}

TEST(ReconstructionEngine, ReusableAcrossBatches) {
  ReconstructionEngine engine(fast_engine(2));
  const auto batch = two_patient_batch();
  const auto first = engine.reconstruct(batch);
  const auto second = engine.reconstruct(batch);  // Matrix cache hit path.
  ASSERT_EQ(first.windows.size(), second.windows.size());
  for (std::size_t i = 0; i < first.windows.size(); ++i) {
    EXPECT_TRUE(
        bit_identical(first.windows[i].signal, second.windows[i].signal));
  }
}

}  // namespace
}  // namespace wbsn::host
