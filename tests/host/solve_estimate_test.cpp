// Per-(m, n) solve-time estimation: the deadline-shed predictor keys its
// EWMA by window shape, because a 512-sample solve costs a different
// amount than a 128-sample one and a shape-blind average lies about both.
// Pins the estimate surface: 0 before any solve, per-shape after solving
// that shape, global fallback for shapes never seen, and the configured
// override beating the measurements.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "host/reconstruction_engine.hpp"
#include "sig/ecg_synth.hpp"
#include "sig/rng.hpp"

namespace wbsn::host {
namespace {

std::vector<CompressedWindow> shaped_windows(std::uint32_t window_samples,
                                             std::size_t count) {
  sig::SynthConfig synth;
  synth.num_leads = 1;
  synth.episodes = {{sig::RhythmEpisode::Kind::kSinus, 16}};
  sig::Rng rng(0x5EED5ULL);
  const auto record = synthesize_ecg(synth, rng);
  RecordCompressionConfig compression;
  compression.window_samples = window_samples;
  compression.cr_percent = 50.0;
  auto windows = compress_record(record, 1, compression);
  EXPECT_GE(windows.size(), count);
  windows.resize(count);
  return windows;
}

struct Shape {
  std::uint32_t m = 0;
  std::uint32_t n = 0;
};

Shape shape_of(const CompressedWindow& window) {
  return {static_cast<std::uint32_t>(window.measurements.size()),
          window.window_samples};
}

TEST(SolveEstimate, PerShapeEwmaTracksEachWindowSizeSeparately) {
  EngineConfig cfg;
  cfg.threads = 0;
  cfg.fista.max_iterations = 40;
  cfg.fista.debias_iterations = 10;
  ReconstructionEngine engine(cfg);

  auto small = shaped_windows(/*window_samples=*/128, /*count=*/4);
  auto large = shaped_windows(/*window_samples=*/512, /*count=*/4);
  const Shape s = shape_of(small.front());
  const Shape l = shape_of(large.front());
  ASSERT_NE(s.n, l.n);

  // Nothing measured yet: the predictor refuses to guess.
  EXPECT_EQ(engine.solve_estimate_ms(s.m, s.n), 0.0);
  EXPECT_EQ(engine.solve_estimate_ms(l.m, l.n), 0.0);

  for (auto& window : small) engine.submit(std::move(window));
  for (auto& window : large) engine.submit(std::move(window));
  const auto results = engine.drain();
  ASSERT_EQ(results.size(), 8u);

  const double small_est = engine.solve_estimate_ms(s.m, s.n);
  const double large_est = engine.solve_estimate_ms(l.m, l.n);
  EXPECT_GT(small_est, 0.0);
  EXPECT_GT(large_est, 0.0);
  // A 512-sample FISTA solve does ~16x the work of a 128-sample one at the
  // same iteration budget; the per-shape estimates must reflect that order
  // even if timing noise blurs the ratio.
  EXPECT_GT(large_est, small_est)
      << "per-shape EWMA collapsed into a shape-blind average";

  // A shape never solved falls back to the global (shape-blind) EWMA:
  // nonzero, and bounded by the measured extremes.
  const double unseen = engine.solve_estimate_ms(s.m + 1, s.n + 64);
  EXPECT_GT(unseen, 0.0);
  EXPECT_GE(unseen, small_est * 0.01);
  EXPECT_LE(unseen, large_est * 100.0);
}

TEST(SolveEstimate, ConfiguredOverrideBeatsMeasurement) {
  EngineConfig cfg;
  cfg.threads = 0;
  cfg.fista.max_iterations = 25;
  cfg.fista.debias_iterations = 5;
  cfg.shed_solve_estimate_ms = 7.5;
  ReconstructionEngine engine(cfg);

  auto windows = shaped_windows(/*window_samples=*/128, /*count=*/2);
  const Shape s = shape_of(windows.front());
  EXPECT_EQ(engine.solve_estimate_ms(s.m, s.n), 7.5);

  for (auto& window : windows) engine.submit(std::move(window));
  ASSERT_EQ(engine.drain().size(), 2u);

  // Measurements exist now, but the operator's override still wins — for
  // every shape, including ones never solved.
  EXPECT_EQ(engine.solve_estimate_ms(s.m, s.n), 7.5);
  EXPECT_EQ(engine.solve_estimate_ms(9999, 9999), 7.5);
}

}  // namespace
}  // namespace wbsn::host
