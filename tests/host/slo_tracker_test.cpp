#include "host/slo_tracker.hpp"

#include "host/reconstruction_engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

namespace wbsn::host {
namespace {

// The histogram uses 8 sub-buckets per octave, so any reported quantile is
// within 12.5% (one sub-bucket) of the true value, plus half a bucket for
// the midpoint convention.
constexpr double kRelTol = 0.20;

TEST(SloTracker, EmptySnapshotIsAllZero) {
  SloTracker tracker;
  const auto snap = tracker.snapshot();
  EXPECT_EQ(snap.submitted, 0u);
  EXPECT_EQ(snap.completed, 0u);
  EXPECT_EQ(snap.in_flight, 0u);
  EXPECT_EQ(snap.deadline_violations, 0u);
  EXPECT_EQ(snap.p50_ms, 0.0);
  EXPECT_EQ(snap.p99_ms, 0.0);
  EXPECT_EQ(snap.max_ms, 0.0);
  EXPECT_EQ(snap.mean_ms, 0.0);
}

TEST(SloTracker, QuantilesOnUniformLatencies) {
  SloTracker tracker;
  // 1..1000 ms, each exactly once: p50 = 500, p95 = 950, p99 = 990.
  for (int ms = 1; ms <= 1000; ++ms) {
    tracker.on_submit();
    tracker.on_complete(static_cast<double>(ms));
    tracker.on_retrieve();
  }
  const auto snap = tracker.snapshot();
  EXPECT_EQ(snap.completed, 1000u);
  EXPECT_EQ(snap.in_flight, 0u);
  EXPECT_NEAR(snap.p50_ms, 500.0, 500.0 * kRelTol);
  EXPECT_NEAR(snap.p95_ms, 950.0, 950.0 * kRelTol);
  EXPECT_NEAR(snap.p99_ms, 990.0, 990.0 * kRelTol);
  EXPECT_DOUBLE_EQ(snap.max_ms, 1000.0);          // Max is exact.
  EXPECT_NEAR(snap.mean_ms, 500.5, 0.01);          // Mean is exact (us sum).
  EXPECT_LE(snap.p50_ms, snap.p95_ms);
  EXPECT_LE(snap.p95_ms, snap.p99_ms);
  EXPECT_LE(snap.p99_ms, snap.max_ms * (1.0 + kRelTol));
}

TEST(SloTracker, SubMillisecondLatenciesResolve) {
  SloTracker tracker;
  for (int i = 0; i < 100; ++i) {
    tracker.on_submit();
    tracker.on_complete(0.050);  // 50 us.
    tracker.on_retrieve();
  }
  const auto snap = tracker.snapshot();
  EXPECT_NEAR(snap.p50_ms, 0.050, 0.050 * kRelTol);
  EXPECT_NEAR(snap.mean_ms, 0.050, 0.001);
}

TEST(SloTracker, DeadlineViolationsCounted) {
  SloTracker tracker(SloConfig{.deadline_ms = 10.0});
  const double latencies[] = {1.0, 9.9, 10.0, 10.1, 50.0, 3.0};
  for (const double ms : latencies) {
    tracker.on_submit();
    tracker.on_complete(ms);
    tracker.on_retrieve();
  }
  const auto snap = tracker.snapshot();
  EXPECT_EQ(snap.deadline_violations, 2u);  // 10.1 and 50; 10.0 is on time.
  EXPECT_DOUBLE_EQ(snap.deadline_ms, 10.0);
}

TEST(SloTracker, ZeroDeadlineDisablesViolations) {
  SloTracker tracker;  // deadline_ms = 0.
  tracker.on_submit();
  tracker.on_complete(1e6);
  tracker.on_retrieve();
  EXPECT_EQ(tracker.snapshot().deadline_violations, 0u);
}

TEST(SloTracker, InFlightDepthAndHighWaterMark) {
  SloTracker tracker;
  for (int i = 0; i < 5; ++i) tracker.on_submit();
  auto snap = tracker.snapshot();
  EXPECT_EQ(snap.in_flight, 5u);
  EXPECT_EQ(snap.max_in_flight, 5u);

  for (int i = 0; i < 3; ++i) {
    tracker.on_complete(1.0);
    tracker.on_retrieve();
  }
  snap = tracker.snapshot();
  EXPECT_EQ(snap.in_flight, 2u);
  EXPECT_EQ(snap.max_in_flight, 5u) << "high-water mark must not shrink";

  tracker.on_submit();
  snap = tracker.snapshot();
  EXPECT_EQ(snap.in_flight, 3u);
  EXPECT_EQ(snap.max_in_flight, 5u);
}

TEST(SloTracker, ResetClearsEverything) {
  SloTracker tracker(SloConfig{.deadline_ms = 1.0});
  tracker.on_submit();
  tracker.on_complete(100.0);
  tracker.on_retrieve();
  ASSERT_EQ(tracker.snapshot().deadline_violations, 1u);

  tracker.reset();
  const auto snap = tracker.snapshot();
  EXPECT_EQ(snap.submitted, 0u);
  EXPECT_EQ(snap.completed, 0u);
  EXPECT_EQ(snap.deadline_violations, 0u);
  EXPECT_EQ(snap.max_in_flight, 0u);
  EXPECT_EQ(snap.p99_ms, 0.0);
  EXPECT_EQ(snap.max_ms, 0.0);
}

TEST(SloTracker, ConcurrentRecordingLosesNothing) {
  SloTracker tracker(SloConfig{.deadline_ms = 0.5});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracker] {
      for (int i = 0; i < kPerThread; ++i) {
        tracker.on_submit();
        tracker.on_complete(i % 2 == 0 ? 0.1 : 1.0);  // Half violate 0.5 ms.
        tracker.on_retrieve();
      }
    });
  }
  for (auto& t : threads) t.join();

  const auto snap = tracker.snapshot();
  EXPECT_EQ(snap.submitted, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.completed, snap.submitted);
  EXPECT_EQ(snap.in_flight, 0u);
  EXPECT_EQ(snap.deadline_violations, snap.completed / 2);
  EXPECT_GT(snap.throughput_per_s, 0.0);
}

TEST(SloTracker, ShedAndRejectCountersSplitByLane) {
  SloTracker tracker;
  for (int i = 0; i < 5; ++i) tracker.on_submit();
  tracker.on_shed(/*urgent=*/false);
  tracker.on_shed(/*urgent=*/false);
  tracker.on_shed(/*urgent=*/true);
  tracker.on_reject();

  auto snap = tracker.snapshot();
  EXPECT_EQ(snap.shed_routine, 2u);
  EXPECT_EQ(snap.shed_urgent, 1u);
  EXPECT_EQ(snap.rejected, 1u);
  EXPECT_EQ(snap.submitted, 5u) << "rejected arrivals were never submitted";
  EXPECT_EQ(snap.in_flight, 2u) << "shed windows leave the in-flight population";

  for (int i = 0; i < 2; ++i) {
    tracker.on_complete(1.0);
    tracker.on_retrieve();
  }
  snap = tracker.snapshot();
  EXPECT_EQ(snap.in_flight, 0u);
  EXPECT_EQ(snap.completed, 2u);

  tracker.reset();
  snap = tracker.snapshot();
  EXPECT_EQ(snap.shed_routine + snap.shed_urgent + snap.rejected, 0u);
}

TEST(SloTracker, MergeFromFoldsHistogramsAndCounters) {
  SloTracker a(SloConfig{.deadline_ms = 10.0});
  SloTracker b(SloConfig{.deadline_ms = 10.0});
  // a: 100 windows at 2 ms; b: 100 windows at 200 ms (all violations).
  for (int i = 0; i < 100; ++i) {
    a.on_submit();
    a.on_complete(2.0);
    a.on_retrieve();
    b.on_submit();
    b.on_complete(200.0);
    b.on_retrieve();
  }
  b.on_shed(/*urgent=*/true);
  b.on_reject();

  SloTracker merged(SloConfig{.deadline_ms = 10.0});
  merged.merge_from(a);
  merged.merge_from(b);
  const auto snap = merged.snapshot();
  EXPECT_EQ(snap.submitted, 200u);
  EXPECT_EQ(snap.completed, 200u);
  EXPECT_EQ(snap.deadline_violations, 100u);
  EXPECT_EQ(snap.shed_urgent, 1u);
  EXPECT_EQ(snap.rejected, 1u);
  // Quantiles come from the merged histogram, not an average of per-shard
  // quantiles: the bimodal mix has p50 in the low mode, p95 in the high.
  EXPECT_NEAR(snap.p50_ms, 2.0, 2.0 * kRelTol);
  EXPECT_NEAR(snap.p95_ms, 200.0, 200.0 * kRelTol);
  EXPECT_DOUBLE_EQ(snap.max_ms, 200.0);
  EXPECT_NEAR(snap.mean_ms, 101.0, 0.1);
  // The merged clock spans the earliest start, so throughput is well
  // defined and positive.
  EXPECT_GT(snap.elapsed_s, 0.0);
  EXPECT_GT(snap.throughput_per_s, 0.0);
}

TEST(SloTracker, MergeFromEmptySourceIsANoOp) {
  SloTracker tracker(SloConfig{.deadline_ms = 5.0});
  for (int i = 0; i < 10; ++i) {
    tracker.on_submit();
    tracker.on_complete(2.0);
    tracker.on_retrieve();
  }
  const auto before = tracker.snapshot();

  SloTracker empty(SloConfig{.deadline_ms = 5.0});
  tracker.merge_from(empty);
  const auto after = tracker.snapshot();
  EXPECT_EQ(after.submitted, before.submitted);
  EXPECT_EQ(after.completed, before.completed);
  EXPECT_EQ(after.shed_routine + after.shed_urgent, 0u);
  EXPECT_EQ(after.rejected, 0u);
  EXPECT_DOUBLE_EQ(after.p50_ms, before.p50_ms);
  EXPECT_DOUBLE_EQ(after.max_ms, before.max_ms);
  EXPECT_DOUBLE_EQ(after.mean_ms, before.mean_ms);
  EXPECT_EQ(empty.snapshot().submitted, 0u) << "merge_from must not touch the source";
}

TEST(SloTracker, DrainIntoConservesEveryCounterAndZeroesTheSource) {
  SloTracker source(SloConfig{.deadline_ms = 10.0});
  SloTracker dest(SloConfig{.deadline_ms = 10.0});
  for (int i = 0; i < 50; ++i) {
    source.on_submit();
    source.on_complete(i % 2 == 0 ? 2.0 : 200.0);  // Half violate.
    source.on_retrieve();
  }
  source.on_shed(/*urgent=*/false);
  source.on_shed(/*urgent=*/true);
  source.on_reject();
  for (int i = 0; i < 20; ++i) {
    dest.on_submit();
    dest.on_complete(5.0);
    dest.on_retrieve();
  }

  const auto s0 = source.snapshot();
  const auto d0 = dest.snapshot();
  source.drain_into(dest);
  const auto s1 = source.snapshot();
  const auto d1 = dest.snapshot();

  // Conservation: dest gained exactly what source lost, for every counter.
  EXPECT_EQ(s1.submitted, 0u);
  EXPECT_EQ(s1.completed, 0u);
  EXPECT_EQ(s1.shed_routine + s1.shed_urgent + s1.rejected, 0u);
  EXPECT_EQ(s1.deadline_violations, 0u);
  EXPECT_EQ(s1.max_ms, 0.0);
  EXPECT_EQ(d1.submitted, s0.submitted + d0.submitted);
  EXPECT_EQ(d1.completed, s0.completed + d0.completed);
  EXPECT_EQ(d1.deadline_violations, s0.deadline_violations + d0.deadline_violations);
  EXPECT_EQ(d1.shed_routine, s0.shed_routine);
  EXPECT_EQ(d1.shed_urgent, s0.shed_urgent);
  EXPECT_EQ(d1.rejected, s0.rejected);
  EXPECT_DOUBLE_EQ(d1.max_ms, 200.0);
  // The merged histogram carries the bimodal mix, not an average.
  EXPECT_NEAR(d1.p95_ms, 200.0, 200.0 * kRelTol);

  // Draining an already-drained (empty) source changes nothing.
  source.drain_into(dest);
  const auto d2 = dest.snapshot();
  EXPECT_EQ(d2.submitted, d1.submitted);
  EXPECT_EQ(d2.completed, d1.completed);
}

// The cross-process handoff pair behind the wire MIGRATE_SLO/ADOPT_SLO
// verbs: extract_state() zeroes the source and packages everything into a
// plain struct, absorb_state() folds it into another tracker.  Counts and
// quantiles must be conserved end to end, exactly like drain_into — the
// struct is just the process-boundary-safe spelling of the same move.
TEST(SloTracker, ExtractAbsorbConservesStateAcrossTheStructBoundary) {
  SloTracker source(SloConfig{.deadline_ms = 10.0});
  for (int i = 0; i < 50; ++i) {
    source.on_submit();
    source.on_complete(i % 2 == 0 ? 2.0 : 200.0);  // Half violate.
    source.on_retrieve();
  }
  source.on_shed(/*urgent=*/false);
  source.on_shed(/*urgent=*/true);
  source.on_reject();
  const auto before = source.snapshot();

  SloTrackerState state = source.extract_state();
  EXPECT_FALSE(state.empty());
  EXPECT_EQ(state.submitted, 50u);
  EXPECT_EQ(state.completed, 50u);
  EXPECT_GT(state.elapsed_us, 0u);
  // Extraction empties the source, just like drain_into.
  const auto drained = source.snapshot();
  EXPECT_EQ(drained.submitted, 0u);
  EXPECT_EQ(drained.completed, 0u);
  EXPECT_EQ(drained.shed_routine + drained.shed_urgent + drained.rejected, 0u);
  EXPECT_EQ(drained.max_ms, 0.0);

  SloTracker dest(SloConfig{.deadline_ms = 10.0});
  dest.on_submit();
  dest.on_complete(500.0);  // Larger max: absorb must not lower it.
  dest.on_retrieve();
  dest.absorb_state(state);
  const auto after = dest.snapshot();
  EXPECT_EQ(after.submitted, before.submitted + 1);
  EXPECT_EQ(after.completed, before.completed + 1);
  EXPECT_EQ(after.deadline_violations, before.deadline_violations + 1);
  EXPECT_EQ(after.shed_routine, before.shed_routine);
  EXPECT_EQ(after.shed_urgent, before.shed_urgent);
  EXPECT_EQ(after.rejected, before.rejected);
  EXPECT_DOUBLE_EQ(after.max_ms, 500.0);
  EXPECT_NEAR(after.p95_ms, 200.0, 200.0 * kRelTol);

  // A smaller imported max loses to the resident one.
  SloTracker small;
  small.on_submit();
  small.on_complete(1.0);
  dest.absorb_state(small.extract_state());
  EXPECT_DOUBLE_EQ(dest.snapshot().max_ms, 500.0);

  // A hostile bucket index from a corrupt peer is ignored, not written
  // out of bounds.
  SloTrackerState corrupt;
  corrupt.buckets.emplace_back(100000u, 7u);
  dest.absorb_state(corrupt);
  EXPECT_EQ(dest.snapshot().completed, after.completed + 1);

  // An extracted-empty tracker round-trips as a no-op.
  EXPECT_TRUE(SloTracker().extract_state().empty());
}

// Handoff raced against a recording thread: counts may land on either
// side of the move but must be conserved — the sum across both trackers
// equals everything ever recorded.  This is the TSan probe for the
// reshard handoff path (ReconstructionEngine::adopt_patient_slo drains a
// moved tracker into an existing one while completions still record).
TEST(SloTracker, DrainIntoConcurrentWithRecordConservesTotals) {
  SloTracker source;
  SloTracker dest;
  constexpr int kRecords = 30000;

  std::thread recorder([&source] {
    for (int i = 0; i < kRecords; ++i) {
      source.on_submit();
      source.on_complete(1.0);
      source.on_retrieve();
    }
  });
  for (int i = 0; i < 200; ++i) {
    source.drain_into(dest);
    std::this_thread::yield();
  }
  recorder.join();
  source.drain_into(dest);  // Sweep the stragglers.

  const auto total = dest.snapshot();
  EXPECT_EQ(total.submitted, static_cast<std::uint64_t>(kRecords));
  EXPECT_EQ(total.completed, static_cast<std::uint64_t>(kRecords));
  EXPECT_EQ(total.in_flight, 0u);
  EXPECT_EQ(source.snapshot().submitted, 0u);
}

// Snapshots raced against recording threads must stay internally sane
// (never crash, never report impossible totals once quiesced).  This is
// also the TSan probe for the record/snapshot concurrency the engine and
// the fabric's merge_from rely on.
TEST(SloTracker, ConcurrentRecordVersusSnapshot) {
  SloTracker tracker(SloConfig{.deadline_ms = 0.5});
  constexpr int kThreads = 3;
  constexpr int kPerThread = 20000;

  std::atomic<bool> stop{false};
  std::thread snapshotter([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const auto snap = tracker.snapshot();
      // Monotone quantile ordering holds for any histogram state.
      EXPECT_LE(snap.p50_ms, snap.p95_ms);
      EXPECT_LE(snap.p95_ms, snap.p99_ms);
      EXPECT_LE(snap.completed, static_cast<std::uint64_t>(kThreads) * kPerThread);
    }
  });

  std::vector<std::thread> recorders;
  for (int t = 0; t < kThreads; ++t) {
    recorders.emplace_back([&tracker] {
      for (int i = 0; i < kPerThread; ++i) {
        tracker.on_submit();
        tracker.on_complete(i % 2 == 0 ? 0.1 : 1.0);
        tracker.on_retrieve();
      }
    });
  }
  for (auto& t : recorders) t.join();
  stop.store(true, std::memory_order_release);
  snapshotter.join();

  const auto snap = tracker.snapshot();
  EXPECT_EQ(snap.submitted, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.completed, snap.submitted);
  EXPECT_EQ(snap.in_flight, 0u);
}

// Handoff against the engine's patient-map capacity: an adopted tracker
// must respect max_tracked_patients exactly like a brand-new patient
// (dropped from the breakdown, engine-wide counters untouched), and
// adopting onto an existing entry must fold, not replace.
TEST(SloTracker, AdoptAtPatientMapCapacityDropsButNeverSplits) {
  EngineConfig cfg;
  cfg.max_tracked_patients = 2;
  ReconstructionEngine engine(cfg);

  const auto tracker_with = [](std::uint64_t completions) {
    auto tracker = std::make_shared<SloTracker>();
    for (std::uint64_t i = 0; i < completions; ++i) {
      tracker->on_submit();
      tracker->on_complete(1.0);
      tracker->on_retrieve();
    }
    return tracker;
  };

  EXPECT_TRUE(engine.adopt_patient_slo(1, tracker_with(3)));
  EXPECT_TRUE(engine.adopt_patient_slo(2, tracker_with(5)));
  EXPECT_FALSE(engine.adopt_patient_slo(3, tracker_with(7)))
      << "a handoff beyond the cap must be refused, not grow the map";
  EXPECT_FALSE(engine.adopt_patient_slo(4, nullptr));

  // Adopting onto an already-tracked patient folds the moved history in.
  EXPECT_TRUE(engine.adopt_patient_slo(1, tracker_with(4)));

  const auto breakdown = engine.patient_slo_snapshots();
  ASSERT_EQ(breakdown.size(), 2u);
  EXPECT_EQ(breakdown[0].patient_id, 1u);
  EXPECT_EQ(breakdown[0].slo.completed, 7u) << "3 adopted + 4 folded in";
  EXPECT_EQ(breakdown[1].patient_id, 2u);
  EXPECT_EQ(breakdown[1].slo.completed, 5u);

  // Extraction frees a slot: the previously refused patient now fits.
  const auto extracted = engine.extract_patient_slo(2);
  ASSERT_NE(extracted, nullptr);
  EXPECT_EQ(extracted->snapshot().completed, 5u);
  EXPECT_EQ(engine.extract_patient_slo(2), nullptr) << "already extracted";
  EXPECT_TRUE(engine.adopt_patient_slo(3, tracker_with(7)));
  EXPECT_EQ(engine.patient_slo_snapshots().size(), 2u);
}

TEST(SloTracker, ThroughputUsesElapsedClock) {
  SloTracker tracker;
  tracker.on_submit();
  tracker.on_complete(1.0);
  tracker.on_retrieve();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const auto snap = tracker.snapshot();
  EXPECT_GT(snap.elapsed_s, 0.015);
  EXPECT_GT(snap.throughput_per_s, 0.0);
  EXPECT_LT(snap.throughput_per_s, 1.0 / 0.015);
}

}  // namespace
}  // namespace wbsn::host
