// Fidelity-degrade policy: under backlog pressure the engine demotes
// queued routine windows down the Figure-5 ladder (higher effective CR,
// capped iterations) instead of shedding them whole.  Pins the contract
// edges: policy off is bit-identical to an engine without the tier
// machinery, urgent windows never demote no matter the flood, a preset
// tier is honored deterministically (the audit path), and a
// row-truncated solve still reconstructs the signal.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <utility>
#include <vector>

#include "cs/sensing_matrix.hpp"
#include "host/reconstruction_engine.hpp"
#include "sig/ecg_synth.hpp"
#include "sig/rng.hpp"

namespace wbsn::host {
namespace {

EngineConfig fast_engine(int threads) {
  EngineConfig cfg;
  cfg.threads = threads;
  cfg.fista.max_iterations = 40;
  cfg.fista.debias_iterations = 10;
  return cfg;
}

/// Distinct-payload windows (real consecutive ECG windows, reference
/// attached) so bit-identity comparisons can't pass vacuously on
/// identical inputs.
std::vector<CompressedWindow> ecg_windows(std::size_t count) {
  sig::SynthConfig synth;
  synth.num_leads = 1;
  synth.episodes = {{sig::RhythmEpisode::Kind::kSinus, 40}};
  sig::Rng rng(0xDE62ADEULL);
  const auto record = synthesize_ecg(synth, rng);
  RecordCompressionConfig compression;
  // 512-sample windows at CR 50 (m = 256): the under-determined regime
  // where a row-truncated operator measurably changes the solve.  At 128
  // samples recovery is exact and every tier collapses to the same bits.
  compression.window_samples = 512;
  auto windows = compress_record(record, 1, compression);
  EXPECT_GE(windows.size(), count);
  windows.resize(count);
  return windows;
}

bool same_signal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

/// A config under enough synthetic pressure to trip the proactive
/// demotion trigger on every submit past the first: pinned 10 ms solves
/// against a 10 ms deadline mean the priced backlog overshoots as soon
/// as two windows queue.
EngineConfig pressured_engine(DegradePolicy policy) {
  auto cfg = fast_engine(0);  // Serial: nothing drains until poll().
  cfg.queue_capacity = 64;
  cfg.slo.deadline_ms = 10.0;
  cfg.shed_solve_estimate_ms = 10.0;  // Pin the predictor: no EWMA warmup.
  cfg.degrade_policy = policy;
  cfg.degrade_tiers = {{/*cr_percent=*/70.0, /*iteration_cap=*/20}};
  cfg.degrade_backlog_deadlines = 1.0;
  return cfg;
}

TEST(DegradePolicy, OffIsBitIdenticalToAnEngineWithoutTheMachinery) {
  // Same pressured shape, policy off vs a plain engine that has never
  // heard of tiers: every reconstruction must match bit for bit.
  ReconstructionEngine off(pressured_engine(DegradePolicy::kOff));
  ReconstructionEngine plain(fast_engine(0));

  auto first = ecg_windows(6);
  auto second = first;
  for (auto& window : first) ASSERT_TRUE(off.try_submit(std::move(window)));
  for (auto& window : second) plain.submit(std::move(window));

  const auto off_results = off.drain();
  const auto plain_results = plain.drain();
  ASSERT_EQ(off_results.size(), 6u);
  ASSERT_EQ(plain_results.size(), 6u);
  for (std::size_t i = 0; i < off_results.size(); ++i) {
    EXPECT_EQ(off_results[i].solve_tier.tier, 0u);
    EXPECT_FALSE(off_results[i].degraded);
    EXPECT_TRUE(same_signal(off_results[i].signal, plain_results[i].signal))
        << "window " << i << ": kOff changed the reconstruction";
  }
  EXPECT_EQ(off.slo().snapshot().degraded_windows, 0u);
}

TEST(DegradePolicy, ProactiveTriggerDemotesQueuedRoutineWindows) {
  ReconstructionEngine engine(pressured_engine(DegradePolicy::kCrIter));
  auto windows = ecg_windows(8);
  const std::uint32_t n = windows.front().window_samples;
  const auto expected_m =
      static_cast<std::uint32_t>(cs::rows_for_cr(70.0, n));
  for (auto& window : windows) {
    ASSERT_TRUE(engine.try_submit(std::move(window)).has_value());
  }

  const auto results = engine.drain();
  ASSERT_EQ(results.size(), 8u);
  std::size_t degraded = 0;
  for (const auto& result : results) {
    if (!result.degraded) continue;
    ++degraded;
    EXPECT_EQ(result.solve_tier.tier, 1u);
    EXPECT_EQ(result.solve_tier.effective_m, expected_m);
    EXPECT_EQ(result.solve_tier.iteration_cap, 20u);
    EXPECT_LE(result.iterations, 20);
    // The row-truncated solve still reconstructs: positive SNR against
    // the attached reference, not garbage from a mangled operator.
    EXPECT_TRUE(std::isfinite(result.snr_db));
    EXPECT_GT(result.snr_db, 0.0);
  }
  EXPECT_GT(degraded, 0u) << "priced backlog never tripped the trigger";
  const auto snap = engine.slo().snapshot();
  EXPECT_EQ(snap.degraded_windows, degraded);
  EXPECT_EQ(snap.shed_routine + snap.shed_urgent, 0u)
      << "demotion relieved pressure; nothing should have shed";
  EXPECT_EQ(engine.lane_slo(cs::WindowPriority::kRoutine).snapshot().degraded_windows,
            degraded);
}

TEST(DegradePolicy, UrgentWindowsNeverDemoteUnderFlood) {
  ReconstructionEngine engine(pressured_engine(DegradePolicy::kCrIter));
  auto windows = ecg_windows(12);
  for (std::size_t i = 0; i < windows.size(); ++i) {
    if (i % 3 == 0) windows[i].priority = cs::WindowPriority::kUrgent;  // 4 of 12.
    ASSERT_TRUE(engine.try_submit(std::move(windows[i])).has_value());
  }

  const auto results = engine.drain();
  ASSERT_EQ(results.size(), 12u);
  std::size_t routine_degraded = 0;
  for (const auto& result : results) {
    if (result.priority == cs::WindowPriority::kUrgent) {
      EXPECT_FALSE(result.degraded) << "urgent window " << result.window_index
                                    << " lost fidelity";
      EXPECT_EQ(result.solve_tier.tier, 0u);
    } else if (result.degraded) {
      ++routine_degraded;
    }
  }
  EXPECT_GT(routine_degraded, 0u) << "flood never demoted anything — vacuous pass";
  EXPECT_EQ(engine.lane_slo(cs::WindowPriority::kUrgent).snapshot().degraded_windows, 0u);
  EXPECT_EQ(engine.lane_slo(cs::WindowPriority::kRoutine).snapshot().degraded_windows,
            routine_degraded);
}

TEST(DegradePolicy, DemotionRepricesTheBacklogUnderMeasuredCosts) {
  // No pinned estimate this time: the cost model prices from its measured
  // EWMA, so a demotion to the capped tier must *shrink* the priced
  // backlog (the whole point of "solve cheaper").  Also pins the
  // pending-patient surface the CR-hint ack is built from.
  auto cfg = fast_engine(0);
  cfg.queue_capacity = 64;
  cfg.slo.deadline_ms = 0.05;  // Any measured backlog overshoots.
  cfg.degrade_policy = DegradePolicy::kCrIter;
  cfg.degrade_tiers = {{/*cr_percent=*/70.0, /*iteration_cap=*/20}};
  cfg.degrade_backlog_deadlines = 1.0;
  ReconstructionEngine engine(cfg);

  auto windows = ecg_windows(5);
  const std::uint32_t m = static_cast<std::uint32_t>(windows[0].measurements.size());
  const std::uint32_t n = windows[0].window_samples;
  // Warm the tier-0 EWMA with one completed solve so admissions charge a
  // measured cost.
  engine.submit(std::move(windows[0]));
  ASSERT_TRUE(engine.poll().has_value());
  const double full_fidelity_ms = engine.cost_model().estimate_ms(m, n, 0, 1.0);
  ASSERT_GT(full_fidelity_ms, 0.0) << "warm solve never reached the cost model";

  for (std::size_t i = 1; i < windows.size(); ++i) {
    ASSERT_TRUE(engine.try_submit(std::move(windows[i])).has_value());
  }
  // Four queued windows, every one demoted to the half-budget tier and
  // repriced: the backlog must come in strictly under four full-fidelity
  // solves.
  EXPECT_GT(engine.backlog_wait_ms(), 0.0);
  EXPECT_LT(engine.backlog_wait_ms(), 4.0 * full_fidelity_ms);

  // The CR-hint surface: patient 1 has queued work.
  EXPECT_EQ(engine.patient_pending(1), 4u);
  const auto pending = engine.pending_patients(8);
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending.front(), 1u);

  const auto results = engine.drain();
  ASSERT_EQ(results.size(), 4u);
  for (const auto& result : results) {
    EXPECT_TRUE(result.degraded);
    EXPECT_EQ(result.solve_tier.tier, 1u);
  }
  EXPECT_TRUE(engine.pending_patients(8).empty());
  EXPECT_EQ(engine.patient_pending(1), 0u);
}

TEST(DegradePolicy, PresetTierIsHonoredDeterministically) {
  // The audit path: a submitter presets a tier and the engine solves at
  // exactly that fidelity, reproducibly, with no policy configured.
  auto windows = ecg_windows(1);
  const std::uint32_t n = windows.front().window_samples;
  cs::SolveTier tier;
  tier.tier = 1;
  tier.effective_m = static_cast<std::uint32_t>(cs::rows_for_cr(70.0, n));
  tier.iteration_cap = 20;

  auto solve_at = [&](cs::SolveTier preset) {
    ReconstructionEngine engine(fast_engine(0));
    CompressedWindow copy = windows.front();
    copy.solve_tier = preset;
    engine.submit(std::move(copy));
    auto results = engine.drain();
    EXPECT_EQ(results.size(), 1u);
    return results.front();
  };

  const auto full = solve_at({});
  const auto once = solve_at(tier);
  const auto twice = solve_at(tier);

  EXPECT_FALSE(full.degraded);
  EXPECT_TRUE(once.degraded);
  EXPECT_EQ(once.solve_tier.tier, 1u);
  EXPECT_EQ(once.solve_tier.effective_m, tier.effective_m);
  EXPECT_LE(once.iterations, 20);
  EXPECT_TRUE(same_signal(once.signal, twice.signal))
      << "per-(payload, tier) determinism contract broken";
  EXPECT_FALSE(same_signal(once.signal, full.signal))
      << "preset tier was ignored — solved at full fidelity";
  EXPECT_TRUE(std::isfinite(once.snr_db));
  EXPECT_GT(once.snr_db, 0.0);
}

}  // namespace
}  // namespace wbsn::host
