// Edge cases of the bounded Vyukov MPMC ring: full-queue rejection, index
// wrap-around far past the ring size, and concurrent producers racing
// consumers that start late (so the ring oscillates between full and
// drained while head/tail keep wrapping).  Plus the two-lane priority
// queue: strict urgent-before-routine pop order, FIFO within a lane,
// front re-insertion, batched pops, and positional victim extraction.
#include "host/work_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

namespace wbsn::host {
namespace {

TEST(WorkQueue, FifoSingleThreaded) {
  BoundedWorkQueue<std::size_t> q(8);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_TRUE(q.try_push(i));
  std::size_t out = 0;
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.try_pop(out));
}

TEST(WorkQueue, ReportsFullAndRoundsCapacityUp) {
  BoundedWorkQueue<int> q(3);  // Rounds up to 4.
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(99));
  int out = 0;
  EXPECT_TRUE(q.try_pop(out));
  EXPECT_TRUE(q.try_push(99));  // Slot freed.
}

TEST(WorkQueue, RejectsWhenFullAndRecoversRepeatedly) {
  BoundedWorkQueue<int> q(4);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(round * 10 + i));
    EXPECT_FALSE(q.try_push(-1)) << "round " << round;
    EXPECT_FALSE(q.try_push(-2)) << "full must stay full";
    int out = 0;
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(q.try_pop(out));
      EXPECT_EQ(out, round * 10 + i);
    }
    EXPECT_FALSE(q.try_pop(out)) << "drained must stay drained";
  }
}

TEST(WorkQueue, WrapsIndicesFarPastRingSize) {
  // Cell sequence numbers keep growing while positions wrap at the mask;
  // push/pop many multiples of the capacity to cross the wrap repeatedly,
  // with a partially full ring so head and tail wrap at different times.
  BoundedWorkQueue<std::size_t> q(4);
  std::size_t out = 0;
  ASSERT_TRUE(q.try_push(1000));  // Keep one element resident.
  for (std::size_t i = 0; i < 64 * q.capacity(); ++i) {
    ASSERT_TRUE(q.try_push(i)) << "iteration " << i;
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, i == 0 ? 1000 : i - 1) << "FIFO must survive wrap-around";
  }
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 64 * q.capacity() - 1);
  EXPECT_FALSE(q.try_pop(out));
}

TEST(WorkQueue, SizeApproxTracksOccupancyWhenQuiesced) {
  BoundedWorkQueue<int> q(8);
  EXPECT_EQ(q.size_approx(), 0u);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.try_push(i));
  EXPECT_EQ(q.size_approx(), 5u);
  int out = 0;
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(q.size_approx(), 4u);
}

TEST(WorkQueue, ConcurrentProducersWithStaggeredConsumers) {
  // A small ring forces producers into the full-queue path while the
  // consumers are still asleep; once consumers start, head/tail wrap the
  // ring hundreds of times.  Checks that nothing is lost, duplicated, or
  // reordered within one producer's stream.
  constexpr int kProducers = 4;
  constexpr int kConsumers = 2;
  constexpr std::uint64_t kPerProducer = 2000;
  BoundedWorkQueue<std::uint64_t> q(8);

  std::atomic<std::uint64_t> popped_total{0};
  std::vector<std::vector<std::uint64_t>> popped(kConsumers);

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&, c] {
      // Staggered start: let producers hit the full ring first.
      std::this_thread::sleep_for(std::chrono::milliseconds(10 * (c + 1)));
      std::uint64_t value = 0;
      while (popped_total.load(std::memory_order_acquire) <
             kProducers * kPerProducer) {
        if (q.try_pop(value)) {
          popped[static_cast<std::size_t>(c)].push_back(value);
          popped_total.fetch_add(1, std::memory_order_acq_rel);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t value = (static_cast<std::uint64_t>(p) << 32) | i;
        while (!q.try_push(value)) std::this_thread::yield();
      }
    });
  }
  for (auto& t : producers) t.join();
  for (auto& t : consumers) t.join();

  // Every pushed value popped exactly once.
  std::vector<std::uint64_t> all;
  for (const auto& per_consumer : popped) {
    all.insert(all.end(), per_consumer.begin(), per_consumer.end());
  }
  ASSERT_EQ(all.size(), kProducers * kPerProducer);
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end()) << "duplicate element";
  for (int p = 0; p < kProducers; ++p) {
    for (std::uint64_t i = 0; i < kPerProducer; ++i) {
      EXPECT_EQ(all[static_cast<std::size_t>(p) * kPerProducer + i],
                (static_cast<std::uint64_t>(p) << 32) | i);
    }
  }

  // Per-producer FIFO: each consumer must see any one producer's values in
  // increasing order (the ring assigns slots in producer CAS order).
  for (const auto& per_consumer : popped) {
    std::array<std::int64_t, kProducers> last;
    last.fill(-1);
    for (const std::uint64_t value : per_consumer) {
      const auto producer = static_cast<std::size_t>(value >> 32);
      const auto seq = static_cast<std::int64_t>(value & 0xFFFFFFFFu);
      EXPECT_GT(seq, last[producer]) << "producer " << producer << " reordered";
      last[producer] = seq;
    }
  }
}

// --- Two-lane priority queue -------------------------------------------------

TEST(TwoLaneQueue, UrgentAlwaysPopsFirstFifoWithinLane) {
  TwoLaneWorkQueue<int> q;
  q.push(1, /*urgent=*/false);
  q.push(2, /*urgent=*/false);
  q.push(10, /*urgent=*/true);
  q.push(3, /*urgent=*/false);
  q.push(11, /*urgent=*/true);
  EXPECT_EQ(q.size(), 5u);
  EXPECT_EQ(q.lane_size(true), 2u);
  EXPECT_EQ(q.lane_size(false), 3u);

  int out = 0;
  const int expected[] = {10, 11, 1, 2, 3};
  for (const int want : expected) {
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, want);
  }
  EXPECT_FALSE(q.try_pop(out));
  EXPECT_TRUE(q.empty());
}

TEST(TwoLaneQueue, PushFrontPreservesQueueAge) {
  TwoLaneWorkQueue<int> q;
  q.push(2, false);
  q.push(3, false);
  q.push_front(1, false);  // A consumer hands back what it popped first.
  q.push_front(10, true);

  int out = 0;
  const int expected[] = {10, 1, 2, 3};
  for (const int want : expected) {
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, want);
  }
}

TEST(TwoLaneQueue, PopSomeDrainsInPriorityOrderUpToTheLimit) {
  TwoLaneWorkQueue<int> q;
  for (int i = 0; i < 4; ++i) q.push(i, false);
  q.push(100, true);
  q.push(101, true);

  std::vector<int> out;
  EXPECT_EQ(q.pop_some(out, 4), 4u);
  EXPECT_EQ(out, (std::vector<int>{100, 101, 0, 1}));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop_some(out, 10), 2u) << "short pop when the backlog runs out";
  EXPECT_EQ(out.size(), 6u);
}

TEST(TwoLaneQueue, ExtractBestSeesPopOrderPositionsAndRemovesTheWinner) {
  TwoLaneWorkQueue<int> q;
  q.push(20, false);  // Overall position 2 (behind both urgent items).
  q.push(21, false);  // Position 3.
  q.push(10, true);   // Position 0.
  q.push(11, true);   // Position 1.

  // Record the positions the scan reports, disqualifying everything.
  std::vector<std::pair<int, std::size_t>> seen;
  const auto none = q.extract_best(
      [&](int value, std::size_t position, bool) -> std::optional<double> {
        seen.push_back({value, position});
        return std::nullopt;
      },
      /*include_urgent=*/true);
  EXPECT_FALSE(none.has_value());
  EXPECT_EQ(seen, (std::vector<std::pair<int, std::size_t>>{{10, 0}, {11, 1}, {20, 2}, {21, 3}}));
  EXPECT_EQ(q.size(), 4u) << "a scan with no qualifier removes nothing";

  // Routine-only scan still reports pop-order positions (offset by the
  // urgent lane) and picks the max score.
  auto victim = q.extract_best(
      [](int value, std::size_t position, bool urgent) -> std::optional<double> {
        EXPECT_FALSE(urgent);
        EXPECT_GE(position, 2u);
        return value == 20 ? std::optional<double>(5.0) : std::optional<double>(1.0);
      },
      /*include_urgent=*/false);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 20);
  EXPECT_EQ(q.size(), 3u);

  int out = 0;
  const int expected[] = {10, 11, 21};
  for (const int want : expected) {
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, want);
  }
}

TEST(TwoLaneQueue, ConcurrentPushPopLosesNothing) {
  TwoLaneWorkQueue<std::uint64_t> q;
  constexpr int kProducers = 3;
  constexpr std::uint64_t kPerProducer = 2000;

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        q.push((static_cast<std::uint64_t>(p) << 32) | i, i % 4 == 0);
      }
    });
  }
  std::atomic<std::uint64_t> popped{0};
  std::atomic<bool> done{false};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      std::uint64_t value = 0;
      for (;;) {
        if (q.try_pop(value)) {
          popped.fetch_add(1, std::memory_order_relaxed);
        } else if (done.load(std::memory_order_acquire) && q.empty()) {
          return;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  done.store(true, std::memory_order_release);
  for (auto& t : consumers) t.join();
  EXPECT_EQ(popped.load(), kProducers * kPerProducer);
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace wbsn::host
