// Consistent-hash ring invariants: deterministic construction, balanced
// ownership, and — the property the fabric's elasticity rests on — a
// bounded blast radius: growing N -> N+1 moves < 2/N of the fleet, every
// mover lands on the new shard, and shrinking moves exactly the retired
// shard's patients.
#include "host/hash_ring.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace wbsn::host {
namespace {

constexpr std::uint32_t kFleet = 20000;
constexpr std::size_t kVnodes = 64;

TEST(HashRing, DeterministicAndStable) {
  const HashRing a(4, kVnodes);
  const HashRing b(4, kVnodes);
  for (std::uint32_t id = 0; id < 512; ++id) {
    ASSERT_LT(a.owner(id), 4u);
    EXPECT_EQ(a.owner(id), b.owner(id)) << "same config must build the same ring";
    EXPECT_EQ(a.owner(id), a.owner(id)) << "ownership must be stable";
  }
}

TEST(HashRing, SingleShardOwnsEverything) {
  const HashRing ring(1, kVnodes);
  for (std::uint32_t id = 0; id < 256; ++id) EXPECT_EQ(ring.owner(id), 0u);
}

TEST(HashRing, OwnershipIsReasonablyBalanced) {
  for (const std::size_t shards : {2u, 3u, 4u, 8u}) {
    const HashRing ring(shards, kVnodes);
    std::vector<std::size_t> owned(shards, 0);
    for (std::uint32_t id = 0; id < kFleet; ++id) ++owned[ring.owner(id)];
    const double ideal = static_cast<double>(kFleet) / static_cast<double>(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      EXPECT_GT(static_cast<double>(owned[s]), 0.5 * ideal)
          << "shard " << s << " of " << shards << " is starved";
      EXPECT_LT(static_cast<double>(owned[s]), 1.6 * ideal)
          << "shard " << s << " of " << shards << " is overloaded";
    }
  }
}

// The acceptance bound: on an N -> N+1 grow, fewer than 2/N of patients
// may re-route (the ideal is 1/(N+1)), and every one that moves must move
// *to* the new shard — survivors' virtual nodes did not change, so no
// patient may bounce between two surviving shards.
TEST(HashRing, GrowMovesLessThanTwoOverNAndOnlyToTheNewShard) {
  for (std::size_t n = 1; n <= 8; ++n) {
    const HashRing before(n, kVnodes);
    const HashRing after(n + 1, kVnodes);
    std::size_t moved = 0;
    for (std::uint32_t id = 0; id < kFleet; ++id) {
      const std::size_t old_owner = before.owner(id);
      const std::size_t new_owner = after.owner(id);
      if (old_owner == new_owner) continue;
      ++moved;
      EXPECT_EQ(new_owner, n) << "a mover may only move to the added shard";
    }
    EXPECT_GT(moved, 0u) << "the new shard must capture someone";
    EXPECT_LT(static_cast<double>(moved),
              2.0 / static_cast<double>(n) * static_cast<double>(kFleet))
        << "grow " << n << " -> " << n + 1 << " re-routed too much of the fleet";
  }
}

TEST(HashRing, ShrinkMovesExactlyTheRetiredShardsPatients) {
  const HashRing before(5, kVnodes);
  const HashRing after(4, kVnodes);
  for (std::uint32_t id = 0; id < kFleet; ++id) {
    const std::size_t old_owner = before.owner(id);
    const std::size_t new_owner = after.owner(id);
    if (old_owner < 4) {
      EXPECT_EQ(new_owner, old_owner) << "survivors' patients must not move on a shrink";
    } else {
      EXPECT_LT(new_owner, 4u) << "the retired shard's patients must scatter to survivors";
    }
  }
}

TEST(HashRing, VnodePointsAreAPureFunctionOfShardAndReplica) {
  EXPECT_EQ(HashRing::vnode_point(3, 7), HashRing::vnode_point(3, 7));
  EXPECT_NE(HashRing::vnode_point(3, 7), HashRing::vnode_point(7, 3));
  EXPECT_NE(HashRing::vnode_point(0, 1), HashRing::vnode_point(1, 0));
}

}  // namespace
}  // namespace wbsn::host
