// Streaming-engine stress: several producer threads submit interleaved
// patient traffic while a dedicated poller retrieves results concurrently
// with the worker pool — the maximal-contention shape of the submit/poll
// API, and the test the TSan CI job exists to run.  Also the determinism
// contract under that contention: every window's output must be
// bit-identical to the serial reference no matter which thread solved it
// or how submissions interleaved.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "host/reconstruction_engine.hpp"
#include "sig/ecg_synth.hpp"
#include "sig/rng.hpp"

namespace wbsn::host {
namespace {

// Small windows and a truncated solver keep the stress affordable under
// TSan's ~10x slowdown while still exercising every queue transition.
std::vector<CompressedWindow> patient_windows(std::uint32_t patient_id, int beats) {
  sig::SynthConfig synth;
  synth.num_leads = 1;
  synth.episodes = {{sig::RhythmEpisode::Kind::kSinus, beats}};
  sig::Rng rng(0xBEA70000ULL + patient_id);
  const auto record = synthesize_ecg(synth, rng);

  RecordCompressionConfig compression;
  compression.window_samples = 128;
  compression.cr_percent = 60.0;
  return compress_record(record, patient_id, compression);
}

EngineConfig stress_config(int threads, std::size_t capacity) {
  EngineConfig cfg;
  cfg.threads = threads;
  cfg.queue_capacity = capacity;  // Small: forces the backpressure paths.
  cfg.fista.max_iterations = 25;
  cfg.fista.debias_iterations = 5;
  cfg.slo.deadline_ms = 1000.0;
  return cfg;
}

using WindowKey = std::pair<std::uint32_t, std::uint32_t>;

bool bit_identical(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

TEST(StreamingStress, ConcurrentProducersPollerAndWorkers) {
  constexpr int kProducers = 3;
  constexpr int kBeatsPerPatient = 6;

  std::vector<std::vector<CompressedWindow>> traffic;
  std::size_t total_windows = 0;
  for (int p = 0; p < kProducers; ++p) {
    traffic.push_back(patient_windows(static_cast<std::uint32_t>(p), kBeatsPerPatient));
    total_windows += traffic.back().size();
  }
  ASSERT_GT(total_windows, 0u);

  // Serial reference, one engine per run so nothing is shared.
  std::map<WindowKey, WindowResult> reference;
  {
    ReconstructionEngine serial(stress_config(0, 4));
    for (const auto& patient : traffic) {
      for (const auto& window : patient) {
        CompressedWindow copy = window;
        serial.submit(std::move(copy));
        for (auto& result : serial.drain()) {
          reference.emplace(WindowKey{result.patient_id, result.window_index},
                            std::move(result));
        }
      }
    }
  }
  ASSERT_EQ(reference.size(), total_windows);

  ReconstructionEngine engine(stress_config(2, 4));

  std::vector<WindowResult> retrieved;
  std::atomic<bool> producers_done{false};
  std::thread poller([&] {
    for (;;) {
      if (auto result = engine.poll()) {
        retrieved.push_back(std::move(*result));
        continue;
      }
      if (producers_done.load(std::memory_order_acquire) && engine.in_flight() == 0) {
        // Results are published before the in-flight slot is released, but
        // possibly after the poll() above — one final sweep catches them.
        while (auto result = engine.poll()) retrieved.push_back(std::move(*result));
        return;
      }
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (const auto& window : traffic[static_cast<std::size_t>(p)]) {
        CompressedWindow copy = window;
        engine.submit(std::move(copy));  // Blocks on backpressure.
      }
    });
  }
  for (auto& t : producers) t.join();
  producers_done.store(true, std::memory_order_release);
  poller.join();

  // The poller raced drain()-less: it must have retrieved every window.
  ASSERT_EQ(retrieved.size(), total_windows);
  EXPECT_EQ(engine.in_flight(), 0u);

  std::map<WindowKey, const WindowResult*> seen;
  for (const auto& result : retrieved) {
    EXPECT_TRUE(seen.emplace(WindowKey{result.patient_id, result.window_index}, &result)
                    .second)
        << "duplicate window delivered";
  }
  for (const auto& [key, expected] : reference) {
    const auto found = seen.find(key);
    ASSERT_NE(found, seen.end()) << "patient " << key.first << " window " << key.second
                                 << " lost";
    EXPECT_TRUE(bit_identical(found->second->signal, expected.signal))
        << "nondeterministic reconstruction for patient " << key.first << " window "
        << key.second;
    EXPECT_EQ(found->second->iterations, expected.iterations);
  }

  const auto snap = engine.slo().snapshot();
  EXPECT_EQ(snap.submitted, total_windows);
  EXPECT_EQ(snap.completed, total_windows);
  EXPECT_EQ(snap.in_flight, 0u);
  EXPECT_GT(snap.p50_ms, 0.0);
  EXPECT_GE(snap.max_in_flight, 1u);
  // SLO in-flight = submitted-but-unretrieved, which includes completed
  // results waiting for the poller, so it may exceed the solver backlog
  // capacity — but never the total traffic.
  EXPECT_LE(snap.max_in_flight, total_windows);
}

TEST(StreamingStress, MixedPriorityContentionStaysDeterministic) {
  // Producers submit interleaved urgent/routine traffic (every third
  // window urgent) while workers drain the two-lane queue and a poller
  // retrieves concurrently: lanes must change only scheduling, never
  // values, and the per-lane trackers must account for every window.
  constexpr int kProducers = 3;
  std::vector<std::vector<CompressedWindow>> traffic;
  std::size_t total_windows = 0;
  std::size_t total_urgent = 0;
  for (int p = 0; p < kProducers; ++p) {
    traffic.push_back(patient_windows(static_cast<std::uint32_t>(p), 6));
    for (std::size_t i = 0; i < traffic.back().size(); ++i) {
      if (i % 3 == 0) {
        traffic.back()[i].priority = cs::WindowPriority::kUrgent;
        ++total_urgent;
      }
    }
    total_windows += traffic.back().size();
  }
  ASSERT_GT(total_urgent, 0u);

  std::map<WindowKey, WindowResult> reference;
  {
    ReconstructionEngine serial(stress_config(0, 4));
    for (const auto& patient : traffic) {
      for (const auto& window : patient) {
        CompressedWindow copy = window;
        serial.submit(std::move(copy));
        for (auto& result : serial.drain()) {
          reference.emplace(WindowKey{result.patient_id, result.window_index},
                            std::move(result));
        }
      }
    }
  }

  ReconstructionEngine engine(stress_config(2, 4));
  std::vector<WindowResult> retrieved;
  std::atomic<bool> producers_done{false};
  std::thread poller([&] {
    for (;;) {
      if (auto result = engine.poll()) {
        retrieved.push_back(std::move(*result));
        continue;
      }
      if (producers_done.load(std::memory_order_acquire) && engine.in_flight() == 0) {
        while (auto result = engine.poll()) retrieved.push_back(std::move(*result));
        return;
      }
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (const auto& window : traffic[static_cast<std::size_t>(p)]) {
        CompressedWindow copy = window;
        engine.submit(std::move(copy));
      }
    });
  }
  for (auto& t : producers) t.join();
  producers_done.store(true, std::memory_order_release);
  poller.join();

  ASSERT_EQ(retrieved.size(), total_windows);
  for (const auto& result : retrieved) {
    const auto found = reference.find(WindowKey{result.patient_id, result.window_index});
    ASSERT_NE(found, reference.end());
    EXPECT_TRUE(bit_identical(result.signal, found->second.signal))
        << "priority lanes must not change values";
  }

  const auto urgent = engine.lane_slo(cs::WindowPriority::kUrgent).snapshot();
  const auto routine = engine.lane_slo(cs::WindowPriority::kRoutine).snapshot();
  EXPECT_EQ(urgent.completed, total_urgent);
  EXPECT_EQ(routine.completed, total_windows - total_urgent);
  EXPECT_EQ(urgent.in_flight, 0u);
  EXPECT_EQ(routine.in_flight, 0u);
}

TEST(StreamingStress, TrackerMapCapHoldsUnderConcurrentPatientChurn) {
  // Many distinct patient ids churn through a small tracker cap while a
  // snapshot thread reads the breakdown concurrently: the map must stay
  // bounded, ids beyond the cap must still count engine-wide, and the
  // concurrent snapshots must not race the recording paths (TSan).
  auto cfg = stress_config(2, 8);
  cfg.max_tracked_patients = 4;
  ReconstructionEngine engine(cfg);

  const auto base = patient_windows(0, 4);
  ASSERT_FALSE(base.empty());
  constexpr int kProducers = 3;
  constexpr std::uint32_t kIdsPerProducer = 8;

  std::atomic<bool> stop{false};
  std::thread snapshotter([&] {
    while (!stop.load(std::memory_order_acquire)) {
      EXPECT_LE(engine.patient_slo_snapshots().size(), 4u);
      (void)engine.slo().snapshot();
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> producers;
  std::atomic<std::size_t> submitted{0};
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint32_t i = 0; i < kIdsPerProducer; ++i) {
        CompressedWindow copy = base[i % base.size()];
        copy.patient_id = static_cast<std::uint32_t>(p) * kIdsPerProducer + i;
        engine.submit(std::move(copy));
        submitted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : producers) t.join();
  const auto results = engine.drain();
  stop.store(true, std::memory_order_release);
  snapshotter.join();

  EXPECT_EQ(results.size(), submitted.load());
  const auto per_patient = engine.patient_slo_snapshots();
  EXPECT_EQ(per_patient.size(), 4u) << "tracker map must refuse ids beyond the cap";
  std::uint64_t tracked = 0;
  for (const auto& p : per_patient) tracked += p.slo.completed;
  EXPECT_LE(tracked, submitted.load());
  EXPECT_EQ(engine.slo().snapshot().completed, submitted.load())
      << "untracked ids still count engine-wide";
}

TEST(StreamingStress, RepeatedDrainCyclesStayConsistent) {
  // Alternating burst-submit / drain cycles on one engine: exercises queue
  // wrap-around, matrix-cache reuse across cycles, and drain() returning
  // exactly what each cycle submitted.
  ReconstructionEngine engine(stress_config(2, 8));
  const auto windows = patient_windows(7, 8);
  ASSERT_GE(windows.size(), 4u);

  std::map<WindowKey, std::vector<double>> first_cycle;
  for (int cycle = 0; cycle < 3; ++cycle) {
    for (const auto& window : windows) {
      CompressedWindow copy = window;
      engine.submit(std::move(copy));
    }
    auto results = engine.drain();
    ASSERT_EQ(results.size(), windows.size()) << "cycle " << cycle;
    for (auto& result : results) {
      const WindowKey key{result.patient_id, result.window_index};
      if (cycle == 0) {
        first_cycle.emplace(key, std::move(result.signal));
      } else {
        const auto found = first_cycle.find(key);
        ASSERT_NE(found, first_cycle.end());
        EXPECT_TRUE(bit_identical(result.signal, found->second))
            << "cycle " << cycle << " diverged";
      }
    }
  }
  EXPECT_EQ(engine.slo().snapshot().completed, 3 * windows.size());
}

}  // namespace
}  // namespace wbsn::host
