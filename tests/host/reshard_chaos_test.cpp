// Deterministic chaos harness for live resharding — the proof behind the
// fabric's elasticity guarantee.
//
// A seeded RNG interleaves submit / poll / drain / resize operations into
// a schedule that walks the fabric through shard counts drawn from
// {1, 2, 3, 4, 8} while fleet traffic is in flight.  Each schedule is
// executed twice against fresh fabrics and the two outcomes must be
// *identical*: every window's reconstruction bitwise-equal (and equal to
// the serial single-engine reference), every composite ticket equal, and
// the aggregate SLO counters (submitted / completed / shed / rejected)
// equal and conserved — topology changes may move work between shards,
// but they may not invent, lose, or alter a single window or count.
//
// Three resize shapes are required by the acceptance bar — grow, shrink,
// and grow-then-shrink — each run with 1 and N worker threads per shard
// (plus the serial inline mode), and a serial overload schedule checks
// that rejection accounting also survives topology changes.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "host/reconstruction_fabric.hpp"
#include "sig/ecg_synth.hpp"
#include "sig/rng.hpp"

namespace wbsn::host {
namespace {

using WindowKey = std::pair<std::uint32_t, std::uint32_t>;

bool bit_identical(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

// Small windows and a truncated solver keep 18 full chaos runs affordable
// (also under TSan) while still exercising every reshard transition.
EngineConfig fast_engine(int threads) {
  EngineConfig cfg;
  cfg.threads = threads;
  cfg.fista.max_iterations = 25;
  cfg.fista.debias_iterations = 5;
  return cfg;
}

std::vector<CompressedWindow> fleet_traffic(int patients, int beats_per_patient) {
  std::vector<CompressedWindow> traffic;
  for (int p = 0; p < patients; ++p) {
    sig::SynthConfig synth;
    synth.num_leads = 1;
    synth.episodes = {{sig::RhythmEpisode::Kind::kSinus, beats_per_patient}};
    sig::Rng rng(0xC4A05000ULL + static_cast<std::uint64_t>(p));
    const auto record = synthesize_ecg(synth, rng);

    RecordCompressionConfig compression;
    compression.window_samples = 128;
    compression.cr_percent = 50.0;
    auto windows = compress_record(record, static_cast<std::uint32_t>(p), compression);
    traffic.insert(traffic.end(), std::make_move_iterator(windows.begin()),
                   std::make_move_iterator(windows.end()));
  }
  // A deterministic third of the traffic rides the urgent lane so the
  // reshard protocol is exercised across both priority lanes.
  for (std::size_t i = 0; i < traffic.size(); ++i) {
    if (i % 3 == 0) traffic[i].priority = cs::WindowPriority::kUrgent;
  }
  return traffic;
}

struct Op {
  enum class Kind { kSubmit, kPoll, kDrain, kResize };
  Kind kind = Kind::kSubmit;
  std::size_t window = 0;  ///< kSubmit: index into the traffic batch.
  int shards = 0;          ///< kResize: the new shard count.
};

/// Builds a schedule: the traffic in seeded-shuffled submission order,
/// polls and occasional drains sprinkled between submissions, and the
/// scenario's resizes pinned at fixed fractions of submission progress so
/// every replay (and every thread count) sees the identical op sequence.
std::vector<Op> make_schedule(std::size_t windows, std::uint64_t seed,
                              const std::vector<std::pair<double, int>>& resizes) {
  std::vector<std::size_t> order(windows);
  for (std::size_t i = 0; i < windows; ++i) order[i] = i;
  sig::Rng rng(seed);
  for (std::size_t i = windows; i > 1; --i) {
    const auto j = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(order[i - 1], order[j]);
  }

  std::vector<Op> ops;
  std::size_t next_resize = 0;
  for (std::size_t submitted = 0; submitted < windows; ++submitted) {
    while (next_resize < resizes.size() &&
           static_cast<double>(submitted) >=
               resizes[next_resize].first * static_cast<double>(windows)) {
      ops.push_back({Op::Kind::kResize, 0, resizes[next_resize].second});
      ++next_resize;
    }
    ops.push_back({Op::Kind::kSubmit, order[submitted], 0});
    const double coin = rng.uniform();
    if (coin < 0.30) ops.push_back({Op::Kind::kPoll, 0, 0});
    if (coin >= 0.95) ops.push_back({Op::Kind::kDrain, 0, 0});
  }
  for (; next_resize < resizes.size(); ++next_resize) {
    ops.push_back({Op::Kind::kResize, 0, resizes[next_resize].second});
  }
  return ops;
}

/// Everything observable about one schedule execution.  Two replays of
/// the same schedule must produce equal Outcomes, field for field.
struct Outcome {
  std::map<WindowKey, WindowResult> results;
  std::vector<std::uint64_t> tickets;       ///< Per submit op, in op order.
  std::vector<std::size_t> moved_per_resize;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t rejected = 0;
  std::uint32_t final_epoch = 0;
  std::size_t final_shards = 0;
};

Outcome run_schedule(const std::vector<CompressedWindow>& traffic, const std::vector<Op>& ops,
                     int initial_shards, int threads) {
  FabricConfig cfg;
  cfg.shards = initial_shards;
  cfg.engine = fast_engine(threads);
  ReconstructionFabric fabric(cfg);

  Outcome out;
  const auto keep = [&out](WindowResult&& result) {
    const WindowKey key{result.patient_id, result.window_index};
    EXPECT_TRUE(out.results.emplace(key, std::move(result)).second)
        << "duplicate result for patient " << key.first << " window " << key.second;
  };

  for (const Op& op : ops) {
    switch (op.kind) {
      case Op::Kind::kSubmit: {
        CompressedWindow copy = traffic[op.window];
        out.tickets.push_back(fabric.submit(std::move(copy)));
        break;
      }
      case Op::Kind::kPoll:
        if (auto result = fabric.poll()) keep(std::move(*result));
        break;
      case Op::Kind::kDrain:
        for (auto&& result : fabric.drain()) keep(std::move(result));
        break;
      case Op::Kind::kResize:
        out.moved_per_resize.push_back(fabric.resize(op.shards).moved_patients);
        break;
    }
  }
  for (auto&& result : fabric.drain()) keep(std::move(result));

  const auto snap = fabric.slo_snapshot();
  out.submitted = snap.submitted;
  out.completed = snap.completed;
  out.shed = snap.shed_routine + snap.shed_urgent;
  out.rejected = snap.rejected;
  out.final_epoch = fabric.epoch();
  out.final_shards = fabric.shard_count();

  // Conservation at quiesce: nothing in flight, every submitted window
  // completed (blocking submits: nothing shed or rejected), every
  // completed window retrieved exactly once.
  EXPECT_EQ(fabric.in_flight(), 0u);
  EXPECT_EQ(snap.in_flight, 0u) << "retrieves must account for every completion";
  EXPECT_EQ(out.completed, out.submitted);
  return out;
}

void expect_equal_outcomes(const Outcome& a, const Outcome& b) {
  ASSERT_EQ(a.results.size(), b.results.size());
  for (const auto& [key, expected] : a.results) {
    const auto found = b.results.find(key);
    ASSERT_NE(found, b.results.end());
    EXPECT_TRUE(bit_identical(found->second.signal, expected.signal))
        << "replay diverged for patient " << key.first << " window " << key.second;
    EXPECT_EQ(found->second.iterations, expected.iterations);
    EXPECT_EQ(found->second.ticket, expected.ticket) << "ticket assignment must replay";
  }
  EXPECT_EQ(a.tickets, b.tickets);
  EXPECT_EQ(a.moved_per_resize, b.moved_per_resize);
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.final_epoch, b.final_epoch);
  EXPECT_EQ(a.final_shards, b.final_shards);
}

class ReshardChaos : public ::testing::Test {
 protected:
  void run_scenario(std::uint64_t seed, int initial_shards,
                    const std::vector<std::pair<double, int>>& resizes) {
    const auto traffic = fleet_traffic(/*patients=*/8, /*beats_per_patient=*/4);
    ASSERT_GE(traffic.size(), 16u);

    // Serial single-engine reference: the one ground truth every cell of
    // the (threads x replay) grid must reproduce bit for bit.
    std::map<WindowKey, WindowResult> reference;
    {
      ReconstructionEngine serial(fast_engine(0));
      for (const auto& window : traffic) {
        CompressedWindow copy = window;
        serial.submit(std::move(copy));
      }
      for (auto& result : serial.drain()) {
        reference.emplace(WindowKey{result.patient_id, result.window_index}, std::move(result));
      }
    }
    ASSERT_EQ(reference.size(), traffic.size());

    const auto ops = make_schedule(traffic.size(), seed, resizes);
    for (const int threads : {0, 1, 3}) {
      const auto first = run_schedule(traffic, ops, initial_shards, threads);
      const auto second = run_schedule(traffic, ops, initial_shards, threads);

      ASSERT_EQ(first.results.size(), traffic.size()) << "threads=" << threads;
      EXPECT_EQ(first.final_epoch, resizes.size());
      {
        SCOPED_TRACE("replay determinism, threads=" + std::to_string(threads));
        expect_equal_outcomes(first, second);
      }
      for (const auto& [key, expected] : reference) {
        const auto found = first.results.find(key);
        ASSERT_NE(found, first.results.end()) << "threads=" << threads;
        EXPECT_TRUE(bit_identical(found->second.signal, expected.signal))
            << "patient " << key.first << " window " << key.second
            << " differs from the serial reference at threads=" << threads;
        EXPECT_EQ(found->second.iterations, expected.iterations);
        EXPECT_EQ(found->second.snr_db, expected.snr_db);
      }
    }
  }
};

TEST_F(ReshardChaos, GrowSchedule) {
  run_scenario(0xC4A05001ULL, /*initial_shards=*/1,
               {{0.25, 2}, {0.50, 4}, {0.75, 8}});
}

TEST_F(ReshardChaos, ShrinkSchedule) {
  run_scenario(0xC4A05002ULL, /*initial_shards=*/8,
               {{0.25, 4}, {0.50, 2}, {0.75, 1}});
}

TEST_F(ReshardChaos, GrowThenShrinkSchedule) {
  run_scenario(0xC4A05003ULL, /*initial_shards=*/2,
               {{0.20, 3}, {0.45, 8}, {0.70, 3}, {0.90, 2}});
}

// Overload under topology change: a serial fabric with tiny per-shard
// admission and non-blocking submits.  With no workers, progress happens
// only at poll/drain ops, so the reject pattern is fully deterministic —
// and must replay exactly, with attempts conserved across rejects and
// completions even as shards come and go.
TEST_F(ReshardChaos, RejectAccountingSurvivesResizes) {
  const auto traffic = fleet_traffic(/*patients=*/6, /*beats_per_patient=*/4);
  const auto ops =
      make_schedule(traffic.size(), 0xC4A05004ULL, {{0.30, 3}, {0.60, 8}, {0.85, 2}});

  const auto run_once = [&] {
    FabricConfig cfg;
    cfg.shards = 2;
    cfg.engine = fast_engine(0);
    cfg.engine.queue_capacity = 2;
    ReconstructionFabric fabric(cfg);

    Outcome out;
    for (const Op& op : ops) {
      switch (op.kind) {
        case Op::Kind::kSubmit: {
          CompressedWindow copy = traffic[op.window];
          const auto ticket = fabric.try_submit(std::move(copy));
          out.tickets.push_back(ticket.value_or(0));  // 0 marks a reject.
          break;
        }
        case Op::Kind::kPoll:
          if (auto result = fabric.poll()) {
            out.results.emplace(WindowKey{result->patient_id, result->window_index},
                                std::move(*result));
          }
          break;
        case Op::Kind::kDrain:
          for (auto&& result : fabric.drain()) {
            out.results.emplace(WindowKey{result.patient_id, result.window_index},
                                std::move(result));
          }
          break;
        case Op::Kind::kResize:
          out.moved_per_resize.push_back(fabric.resize(op.shards).moved_patients);
          break;
      }
    }
    for (auto&& result : fabric.drain()) {
      out.results.emplace(WindowKey{result.patient_id, result.window_index}, std::move(result));
    }
    const auto snap = fabric.slo_snapshot();
    out.submitted = snap.submitted;
    out.completed = snap.completed;
    out.shed = snap.shed_routine + snap.shed_urgent;
    out.rejected = snap.rejected;
    out.final_epoch = fabric.epoch();
    out.final_shards = fabric.shard_count();
    return out;
  };

  const auto first = run_once();
  const auto second = run_once();

  EXPECT_GT(first.rejected, 0u) << "the schedule must actually hit backpressure";
  EXPECT_LT(first.results.size(), traffic.size());
  // Attempt conservation: every submission either completed or was
  // rejected at admission, across three topology changes.
  EXPECT_EQ(first.completed + first.rejected, traffic.size());
  EXPECT_EQ(first.completed, first.results.size());
  EXPECT_EQ(first.submitted, first.completed);
  EXPECT_EQ(first.shed, 0u);
  {
    SCOPED_TRACE("overload replay determinism");
    expect_equal_outcomes(first, second);
  }
}

}  // namespace
}  // namespace wbsn::host
