// Reshard soak: concurrent producers keep submitting fleet traffic while
// a control thread resizes the fabric up and down and a dedicated poller
// retrieves results — the maximal-contention shape of live elasticity,
// and a primary target of the TSan CI job (routing reads race the table
// swap, drain/handoff races recording, retired shards race the reaper).
// The determinism contract must hold through all of it: every window
// bit-identical to the serial reference, nothing lost, nothing duplicated,
// and the aggregate counters conserved once quiesced.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <iterator>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "host/reconstruction_fabric.hpp"
#include "sig/ecg_synth.hpp"
#include "sig/rng.hpp"

namespace wbsn::host {
namespace {

using WindowKey = std::pair<std::uint32_t, std::uint32_t>;

bool bit_identical(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

std::vector<CompressedWindow> patient_windows(std::uint32_t patient_id, int beats) {
  sig::SynthConfig synth;
  synth.num_leads = 1;
  synth.episodes = {{sig::RhythmEpisode::Kind::kSinus, beats}};
  sig::Rng rng(0x4E5A0000ULL + patient_id);
  const auto record = synthesize_ecg(synth, rng);

  RecordCompressionConfig compression;
  compression.window_samples = 128;
  compression.cr_percent = 60.0;
  return compress_record(record, patient_id, compression);
}

TEST(ReshardStress, ConcurrentProducersResizerAndPoller) {
  constexpr int kProducers = 3;
  constexpr int kBeatsPerPatient = 6;

  std::vector<std::vector<CompressedWindow>> traffic;
  std::size_t total_windows = 0;
  for (int p = 0; p < kProducers; ++p) {
    traffic.push_back(patient_windows(static_cast<std::uint32_t>(p), kBeatsPerPatient));
    for (std::size_t i = 0; i < traffic.back().size(); ++i) {
      if (i % 3 == 0) traffic.back()[i].priority = cs::WindowPriority::kUrgent;
    }
    total_windows += traffic.back().size();
  }
  ASSERT_GT(total_windows, 0u);

  std::map<WindowKey, WindowResult> reference;
  {
    EngineConfig serial_cfg;
    serial_cfg.fista.max_iterations = 25;
    serial_cfg.fista.debias_iterations = 5;
    ReconstructionEngine serial(serial_cfg);
    for (const auto& patient : traffic) {
      for (const auto& window : patient) {
        CompressedWindow copy = window;
        serial.submit(std::move(copy));
      }
    }
    for (auto& result : serial.drain()) {
      reference.emplace(WindowKey{result.patient_id, result.window_index}, std::move(result));
    }
  }
  ASSERT_EQ(reference.size(), total_windows);

  FabricConfig cfg;
  cfg.shards = 2;
  cfg.engine.threads = 2;
  cfg.engine.queue_capacity = 4;  // Small: forces backpressure during resizes.
  cfg.engine.fista.max_iterations = 25;
  cfg.engine.fista.debias_iterations = 5;
  cfg.engine.slo.deadline_ms = 1000.0;
  ReconstructionFabric fabric(cfg);

  std::vector<WindowResult> retrieved;
  std::atomic<bool> producers_done{false};
  std::thread poller([&] {
    for (;;) {
      if (auto result = fabric.poll()) {
        retrieved.push_back(std::move(*result));
        continue;
      }
      if (producers_done.load(std::memory_order_acquire) && fabric.in_flight() == 0) {
        while (auto result = fabric.poll()) retrieved.push_back(std::move(*result));
        return;
      }
      std::this_thread::yield();
    }
  });

  // The control thread walks the fabric up and down through every shard
  // count the chaos harness covers, resizing as fast as the drain/handoff
  // protocol allows, until the producers finish.
  std::vector<ResizeReport> reports;
  std::thread resizer([&] {
    const int plan[] = {3, 1, 4, 2, 8, 2};
    std::size_t step = 0;
    while (!producers_done.load(std::memory_order_acquire)) {
      reports.push_back(fabric.resize(plan[step % std::size(plan)]));
      ++step;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (const auto& window : traffic[static_cast<std::size_t>(p)]) {
        CompressedWindow copy = window;
        fabric.submit(std::move(copy));  // Blocks on backpressure.
      }
    });
  }
  for (auto& t : producers) t.join();
  producers_done.store(true, std::memory_order_release);
  resizer.join();
  poller.join();

  ASSERT_GE(reports.size(), 1u) << "the control thread must have resized at least once";
  EXPECT_EQ(fabric.epoch(), reports.size());

  ASSERT_EQ(retrieved.size(), total_windows) << "no window may be lost across resizes";
  std::map<WindowKey, const WindowResult*> seen;
  for (const auto& result : retrieved) {
    EXPECT_TRUE(seen.emplace(WindowKey{result.patient_id, result.window_index}, &result).second)
        << "duplicate window delivered";
  }
  for (const auto& [key, expected] : reference) {
    const auto found = seen.find(key);
    ASSERT_NE(found, seen.end())
        << "patient " << key.first << " window " << key.second << " lost";
    EXPECT_TRUE(bit_identical(found->second->signal, expected.signal))
        << "resharding changed patient " << key.first << " window " << key.second;
    EXPECT_EQ(found->second->iterations, expected.iterations);
  }

  // Quiesced conservation across the whole topology history (active,
  // retired, and reaped shards all fold into the aggregate).
  const auto snap = fabric.slo_snapshot();
  EXPECT_EQ(snap.submitted, total_windows);
  EXPECT_EQ(snap.completed, total_windows);
  EXPECT_EQ(snap.rejected, 0u) << "blocking submits never reject";
  EXPECT_EQ(snap.shed_routine + snap.shed_urgent, 0u) << "shedding is off";
  EXPECT_EQ(snap.in_flight, 0u);

  const auto urgent = fabric.lane_slo_snapshot(cs::WindowPriority::kUrgent);
  const auto routine = fabric.lane_slo_snapshot(cs::WindowPriority::kRoutine);
  EXPECT_EQ(urgent.completed + routine.completed, total_windows)
      << "lane counters must survive retirement and reaping";
}

TEST(ReshardStress, ResizeStormWhileIdleIsHarmless) {
  // Back-to-back resizes with no traffic in flight: every epoch opens and
  // closes cleanly, retired shards reap immediately, and a burst of
  // traffic afterwards lands on the final topology intact.
  FabricConfig cfg;
  cfg.shards = 1;
  cfg.engine.threads = 2;
  cfg.engine.fista.max_iterations = 25;
  cfg.engine.fista.debias_iterations = 5;
  ReconstructionFabric fabric(cfg);

  for (int step = 0; step < 12; ++step) {
    const int target = 1 + (step * 3) % 8;
    const auto report = fabric.resize(target);
    EXPECT_EQ(report.shards_after, static_cast<std::size_t>(target));
    EXPECT_EQ(fabric.shard_count(), static_cast<std::size_t>(target));
  }
  EXPECT_EQ(fabric.epoch(), 12u);

  const auto windows = patient_windows(42, 4);
  for (const auto& window : windows) {
    CompressedWindow copy = window;
    fabric.submit(std::move(copy));
  }
  EXPECT_EQ(fabric.drain().size(), windows.size());
  const auto snap = fabric.slo_snapshot();
  EXPECT_EQ(snap.completed, windows.size());
  EXPECT_EQ(snap.in_flight, 0u);
}

}  // namespace
}  // namespace wbsn::host
