// SolveCostModel unit surface: the (m, n, tier) EWMA table the shed
// predictor and degrade policy price solves with.  Pins the fallback
// chain (override > exact tier > tier-0 scaled > global scaled), the
// tier_scale clamp, and the EWMA fold — the degrade decision is only as
// sound as the price it is handed.
#include <gtest/gtest.h>

#include "host/solve_cost_model.hpp"

namespace wbsn::host {
namespace {

TEST(SolveCostModel, TierScaleIsIterationRatioWithFloor) {
  // Uncapped or meaningless caps price at full cost.
  EXPECT_EQ(SolveCostModel::tier_scale(0, 200), 1.0);
  EXPECT_EQ(SolveCostModel::tier_scale(200, 200), 1.0);
  EXPECT_EQ(SolveCostModel::tier_scale(400, 200), 1.0);
  EXPECT_EQ(SolveCostModel::tier_scale(80, 0), 1.0);
  // A real cap prices linearly in the iteration budget...
  EXPECT_DOUBLE_EQ(SolveCostModel::tier_scale(80, 200), 0.4);
  EXPECT_DOUBLE_EQ(SolveCostModel::tier_scale(100, 200), 0.5);
  // ...down to the floor: warm-up and debias never shrink to zero.
  EXPECT_DOUBLE_EQ(SolveCostModel::tier_scale(1, 200), 0.05);
}

TEST(SolveCostModel, EmptyModelRefusesToGuess) {
  SolveCostModel model;
  EXPECT_EQ(model.estimate_ms(256, 512, 0), 0.0);
  EXPECT_EQ(model.estimate_ms(256, 512, 1, 0.4), 0.0);
  EXPECT_EQ(model.measured_us(256, 512, 0), 0u);
  EXPECT_EQ(model.global_us(), 0u);
}

TEST(SolveCostModel, FallbackChainMostToLeastSpecific) {
  SolveCostModel model;
  model.record(/*m=*/256, /*n=*/512, /*tier=*/0, /*sample_us=*/1000);

  // Exact (m, n, tier) measurement wins once it exists.
  EXPECT_DOUBLE_EQ(model.estimate_ms(256, 512, 0), 1.0);

  // Tier 1 has never run: priced off the tier-0 measurement at the same
  // shape, scaled by the iteration-budget ratio.
  EXPECT_DOUBLE_EQ(model.estimate_ms(256, 512, 1, 0.4), 0.4);

  // Once tier 1 is measured at this shape, the measurement replaces the
  // scaled guess — even when it disagrees with the ratio.
  model.record(256, 512, 1, 700);
  EXPECT_DOUBLE_EQ(model.estimate_ms(256, 512, 1, 0.4), 0.7);

  // A shape never seen rides the shape-blind global EWMA, still scaled
  // for tiers.  Global has folded three samples by now; just pin bounds.
  const double unseen_full = model.estimate_ms(128, 256, 0);
  const double unseen_tier = model.estimate_ms(128, 256, 1, 0.5);
  EXPECT_GT(unseen_full, 0.0);
  EXPECT_DOUBLE_EQ(unseen_tier, unseen_full * 0.5);
}

TEST(SolveCostModel, OverridePinsEveryEstimate) {
  SolveCostModel model;
  model.record(256, 512, 0, 1000);
  model.override_ms = 7.5;
  EXPECT_EQ(model.estimate_ms(256, 512, 0), 7.5);
  EXPECT_EQ(model.estimate_ms(256, 512, 1, 0.1), 7.5);
  EXPECT_EQ(model.estimate_ms(9999, 9999, 3, 0.1), 7.5);
}

TEST(SolveCostModel, EwmaFoldsTowardNewSamples) {
  SolveCostModel model;
  model.record(256, 512, 0, 800);
  EXPECT_EQ(model.measured_us(256, 512, 0), 800u);  // First sample seeds.
  // alpha = 1/8: (800 * 7 + 1600) / 8 = 900.
  model.record(256, 512, 0, 1600);
  EXPECT_EQ(model.measured_us(256, 512, 0), 900u);
  // Tiers are separate keys: tier 1 is untouched by tier-0 folds.
  EXPECT_EQ(model.measured_us(256, 512, 1), 0u);
}

TEST(SolveCostModel, EstimatesTrackShapeMonotonically) {
  SolveCostModel model;
  model.record(/*m=*/64, /*n=*/128, 0, 100);
  model.record(/*m=*/256, /*n=*/512, 0, 1600);
  EXPECT_GT(model.estimate_ms(256, 512, 0), model.estimate_ms(64, 128, 0))
      << "per-shape table collapsed into a shape-blind average";
}

TEST(SolveCostModel, UnpackableShapesRideTheGlobalFallback) {
  SolveCostModel model;
  // m >= 2^24 cannot pack into the key: no per-shape slot, but the global
  // EWMA still carries the sample.
  model.record(1u << 24, 512, 0, 500);
  EXPECT_EQ(model.measured_us(1u << 24, 512, 0), 0u);
  EXPECT_EQ(model.global_us(), 500u);
  EXPECT_DOUBLE_EQ(model.estimate_ms(1u << 24, 512, 0), 0.5);
}

}  // namespace
}  // namespace wbsn::host
