// Priority lanes and deadline-aware shedding: urgent windows jump the
// backlog, the shed policy drops the queued window predicted to miss its
// deadline (never the newest arrival, never an urgent window for a
// routine one), and every shed/reject lands in the right lane's counters.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "host/reconstruction_engine.hpp"
#include "sig/ecg_synth.hpp"
#include "sig/rng.hpp"

namespace wbsn::host {
namespace {

EngineConfig fast_engine(int threads) {
  EngineConfig cfg;
  cfg.threads = threads;
  cfg.fista.max_iterations = 40;
  cfg.fista.debias_iterations = 10;
  return cfg;
}

/// A small pool of identical-payload windows distinguished only by
/// window_index (and the priority the test assigns).
std::vector<CompressedWindow> numbered_windows(std::size_t count) {
  sig::SynthConfig synth;
  synth.num_leads = 1;
  synth.episodes = {{sig::RhythmEpisode::Kind::kSinus, 6}};
  sig::Rng rng(0xBEA7ULL);
  const auto record = synthesize_ecg(synth, rng);
  RecordCompressionConfig compression;
  compression.window_samples = 128;
  const auto base = compress_record(record, 1, compression);
  EXPECT_FALSE(base.empty());

  std::vector<CompressedWindow> out;
  for (std::size_t i = 0; i < count; ++i) {
    CompressedWindow copy = base.front();
    copy.window_index = static_cast<std::uint32_t>(i);
    out.push_back(std::move(copy));
  }
  return out;
}

TEST(PriorityLanes, UrgentWindowsSolveBeforeQueuedRoutineOnes) {
  // Serial mode so nothing drains the queue until poll(): submit routine,
  // routine, urgent — completion order must lead with the urgent window.
  ReconstructionEngine engine(fast_engine(0));
  auto windows = numbered_windows(3);
  windows[2].priority = cs::WindowPriority::kUrgent;
  for (auto& window : windows) {
    ASSERT_TRUE(engine.try_submit(std::move(window)).has_value());
  }
  EXPECT_EQ(engine.backlog(cs::WindowPriority::kUrgent), 1u);
  EXPECT_EQ(engine.backlog(cs::WindowPriority::kRoutine), 2u);

  const auto first = engine.poll();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->window_index, 2u) << "urgent window must jump the backlog";
  EXPECT_EQ(first->priority, cs::WindowPriority::kUrgent);

  const auto second = engine.poll();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->window_index, 0u) << "routine lane stays FIFO";
  EXPECT_EQ(engine.drain().size(), 1u);
}

TEST(PriorityLanes, LaneTrackersSplitTheTraffic) {
  ReconstructionEngine engine(fast_engine(2));
  auto windows = numbered_windows(6);
  for (std::size_t i = 0; i < windows.size(); ++i) {
    if (i % 3 == 0) windows[i].priority = cs::WindowPriority::kUrgent;  // 2 of 6.
    engine.submit(std::move(windows[i]));
  }
  const auto results = engine.drain();
  ASSERT_EQ(results.size(), 6u);

  const auto urgent = engine.lane_slo(cs::WindowPriority::kUrgent).snapshot();
  const auto routine = engine.lane_slo(cs::WindowPriority::kRoutine).snapshot();
  EXPECT_EQ(urgent.submitted, 2u);
  EXPECT_EQ(urgent.completed, 2u);
  EXPECT_EQ(urgent.in_flight, 0u);
  EXPECT_EQ(routine.submitted, 4u);
  EXPECT_EQ(routine.completed, 4u);
  EXPECT_EQ(routine.in_flight, 0u);
  EXPECT_EQ(engine.slo().snapshot().completed, 6u) << "engine-wide tracker sees both lanes";
}

// The acceptance scenario: under overload the engine sheds the queued
// window already predicted to miss its deadline — not the newest arrival,
// which binary admission would have bounced.
TEST(DeadlineShedding, DropsThePredictedMissNotTheNewestArrival) {
  auto cfg = fast_engine(0);
  cfg.queue_capacity = 3;
  cfg.deadline_shedding = true;
  cfg.slo.deadline_ms = 100.0;
  cfg.shed_solve_estimate_ms = 10.0;  // Pin the predictor: no EWMA warmup.
  ReconstructionEngine engine(cfg);

  auto windows = numbered_windows(4);
  // Window 0 enters first and ages past its whole deadline budget: with a
  // 10 ms solve estimate its predicted completion overshoots no matter
  // what, while windows 1 and 2 (fresh, shallow queue) are still on time.
  ASSERT_TRUE(engine.try_submit(std::move(windows[0])).has_value());
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  ASSERT_TRUE(engine.try_submit(std::move(windows[1])).has_value());
  ASSERT_TRUE(engine.try_submit(std::move(windows[2])).has_value());
  EXPECT_EQ(engine.in_flight(), 3u);

  // At capacity: the newest arrival (window 3) must be admitted by
  // shedding window 0, the predicted miss.
  const auto ticket = engine.try_submit(std::move(windows[3]));
  ASSERT_TRUE(ticket.has_value()) << "deadline-aware admission must not bounce the arrival";
  EXPECT_EQ(engine.in_flight(), 3u) << "victim's slot was transferred";

  const auto results = engine.drain();
  ASSERT_EQ(results.size(), 3u);
  for (const auto& result : results) {
    EXPECT_NE(result.window_index, 0u) << "the predicted-miss window must be the one shed";
  }

  const auto snap = engine.slo().snapshot();
  EXPECT_EQ(snap.submitted, 4u);
  EXPECT_EQ(snap.completed, 3u);
  EXPECT_EQ(snap.shed_routine, 1u);
  EXPECT_EQ(snap.shed_urgent, 0u);
  EXPECT_EQ(snap.rejected, 0u);
  EXPECT_EQ(snap.in_flight, 0u) << "shed windows leave the in-flight population";
}

TEST(DeadlineShedding, FallsBackToRejectionWithoutASolveTimeSignal) {
  auto cfg = fast_engine(0);
  cfg.queue_capacity = 2;
  cfg.deadline_shedding = true;
  cfg.slo.deadline_ms = 1.0;  // Everything is doomed...
  // ...but shed_solve_estimate_ms is 0 and nothing has completed, so the
  // predictor has no signal and admission stays binary.
  ReconstructionEngine engine(cfg);

  auto windows = numbered_windows(3);
  ASSERT_TRUE(engine.try_submit(std::move(windows[0])).has_value());
  ASSERT_TRUE(engine.try_submit(std::move(windows[1])).has_value());
  EXPECT_FALSE(engine.try_submit(std::move(windows[2])).has_value());

  const auto snap = engine.slo().snapshot();
  EXPECT_EQ(snap.rejected, 1u);
  EXPECT_EQ(snap.shed_routine + snap.shed_urgent, 0u);
  EXPECT_EQ(engine.drain().size(), 2u);
}

TEST(DeadlineShedding, RoutineArrivalNeverDisplacesUrgentWindows) {
  auto cfg = fast_engine(0);
  cfg.queue_capacity = 2;
  cfg.deadline_shedding = true;
  cfg.slo.deadline_ms = 50.0;
  cfg.shed_solve_estimate_ms = 10.0;
  ReconstructionEngine engine(cfg);

  auto windows = numbered_windows(4);
  windows[0].priority = cs::WindowPriority::kUrgent;
  windows[1].priority = cs::WindowPriority::kUrgent;
  windows[3].priority = cs::WindowPriority::kUrgent;
  ASSERT_TRUE(engine.try_submit(std::move(windows[0])).has_value());
  ASSERT_TRUE(engine.try_submit(std::move(windows[1])).has_value());
  std::this_thread::sleep_for(std::chrono::milliseconds(120));  // Both now doomed.

  // Routine arrival: only the routine lane is scanned, it is empty, so
  // binary backpressure applies even though urgent victims exist.
  EXPECT_FALSE(engine.try_submit(std::move(windows[2])).has_value());
  auto snap = engine.slo().snapshot();
  EXPECT_EQ(snap.rejected, 1u);
  EXPECT_EQ(snap.shed_urgent, 0u);

  // Urgent arrival: may displace a doomed urgent window.
  ASSERT_TRUE(engine.try_submit(std::move(windows[3])).has_value());
  snap = engine.slo().snapshot();
  EXPECT_EQ(snap.shed_urgent, 1u);
  EXPECT_EQ(snap.shed_routine, 0u);
  EXPECT_EQ(engine.lane_slo(cs::WindowPriority::kUrgent).snapshot().shed_urgent, 1u);
  EXPECT_EQ(engine.drain().size(), 2u);
}

TEST(DeadlineShedding, PrefersRoutineVictimOverOlderUrgentOne) {
  auto cfg = fast_engine(0);
  cfg.queue_capacity = 2;
  cfg.deadline_shedding = true;
  cfg.slo.deadline_ms = 50.0;
  cfg.shed_solve_estimate_ms = 10.0;
  ReconstructionEngine engine(cfg);

  auto windows = numbered_windows(3);
  windows[0].priority = cs::WindowPriority::kUrgent;  // Older than the routine one.
  windows[2].priority = cs::WindowPriority::kUrgent;
  ASSERT_TRUE(engine.try_submit(std::move(windows[0])).has_value());
  ASSERT_TRUE(engine.try_submit(std::move(windows[1])).has_value());
  std::this_thread::sleep_for(std::chrono::milliseconds(120));  // Both doomed.

  ASSERT_TRUE(engine.try_submit(std::move(windows[2])).has_value());
  const auto snap = engine.slo().snapshot();
  EXPECT_EQ(snap.shed_routine, 1u) << "routine lane is shed first even when urgent is older";
  EXPECT_EQ(snap.shed_urgent, 0u);

  const auto results = engine.drain();
  ASSERT_EQ(results.size(), 2u);
  for (const auto& result : results) {
    EXPECT_EQ(result.priority, cs::WindowPriority::kUrgent)
        << "the surviving windows are the urgent ones";
  }
}

TEST(DeadlineShedding, BatchWrapperAndBlockingSubmitNeverShed) {
  // reconstruct()'s contract is every window back in input order, and a
  // blocking submit() waits rather than dropping queued work — so even a
  // shed-everything configuration must not shed (or count rejections)
  // through those paths.
  auto cfg = fast_engine(2);
  cfg.queue_capacity = 2;
  cfg.deadline_shedding = true;
  cfg.slo.deadline_ms = 0.0001;       // Everything predicted to miss...
  cfg.shed_solve_estimate_ms = 50.0;  // ...with the predictor fully primed.
  ReconstructionEngine engine(cfg);

  const auto windows = numbered_windows(8);
  const auto result = engine.reconstruct(windows);
  ASSERT_EQ(result.windows.size(), windows.size());
  for (std::size_t i = 0; i < result.windows.size(); ++i) {
    EXPECT_EQ(result.windows[i].window_index, windows[i].window_index);
    EXPECT_FALSE(result.windows[i].signal.empty()) << "window " << i << " was shed";
  }
  const auto snap = engine.slo().snapshot();
  EXPECT_EQ(snap.completed, windows.size());
  EXPECT_EQ(snap.shed_routine + snap.shed_urgent, 0u);
  EXPECT_EQ(snap.rejected, 0u) << "backpressure retries are not rejections";
}

TEST(StarvationAging, ProtectionCurveIsPinned) {
  // The aging curve is a contract the behavioral tests lean on: zero
  // protection up to one deadline of age, a linear ramp, and full
  // (shed-exempt) protection at aging_deadlines deadlines.
  const double kDeadline = 100.0;
  const double kAging = 3.0;
  // Disabled configurations always report zero protection.
  EXPECT_EQ(shed_aging_protection(1e9, kDeadline, 0.0), 0.0);
  EXPECT_EQ(shed_aging_protection(1e9, kDeadline, 1.0), 0.0);
  EXPECT_EQ(shed_aging_protection(1e9, 0.0, kAging), 0.0);
  // Below and at one deadline of age: no protection yet.
  EXPECT_EQ(shed_aging_protection(0.0, kDeadline, kAging), 0.0);
  EXPECT_EQ(shed_aging_protection(kDeadline, kDeadline, kAging), 0.0);
  // Linear ramp between one deadline and aging_deadlines deadlines.
  EXPECT_DOUBLE_EQ(shed_aging_protection(150.0, kDeadline, kAging), 0.25);
  EXPECT_DOUBLE_EQ(shed_aging_protection(200.0, kDeadline, kAging), 0.5);
  EXPECT_DOUBLE_EQ(shed_aging_protection(250.0, kDeadline, kAging), 0.75);
  // Full protection at the knee, clamped beyond it.
  EXPECT_EQ(shed_aging_protection(300.0, kDeadline, kAging), 1.0);
  EXPECT_EQ(shed_aging_protection(1e9, kDeadline, kAging), 1.0);
}

TEST(StarvationAging, AgedRoutineWindowSurvivesAnUrgentFlood) {
  // Without aging, DropsThePredictedMissNotTheNewestArrival shows the
  // oldest doomed routine window is always the victim — under a sustained
  // AF alarm flood the same survivor would be re-doomed forever.  With
  // shed_starvation_aging, a window that outlives aging_deadlines
  // deadlines becomes shed-exempt and the predictor victimizes the
  // younger doomed window instead.
  auto cfg = fast_engine(0);
  cfg.queue_capacity = 2;
  cfg.deadline_shedding = true;
  cfg.slo.deadline_ms = 50.0;
  cfg.shed_solve_estimate_ms = 10.0;  // Pin the predictor: no EWMA warmup.
  cfg.shed_starvation_aging = 3.0;    // Shed-exempt at 150 ms of age.
  ReconstructionEngine engine(cfg);

  auto windows = numbered_windows(3);
  windows[2].priority = cs::WindowPriority::kUrgent;
  ASSERT_TRUE(engine.try_submit(std::move(windows[0])).has_value());
  std::this_thread::sleep_for(std::chrono::milliseconds(170));  // Past the knee: exempt.
  ASSERT_TRUE(engine.try_submit(std::move(windows[1])).has_value());
  std::this_thread::sleep_for(std::chrono::milliseconds(70));  // Doomed, but young.

  // The urgent arrival needs a slot.  Window 0 is the most-doomed by raw
  // overshoot but fully aged; window 1 is the one shed.
  ASSERT_TRUE(engine.try_submit(std::move(windows[2])).has_value());
  const auto results = engine.drain();
  ASSERT_EQ(results.size(), 2u);
  for (const auto& result : results) {
    EXPECT_NE(result.window_index, 1u) << "the younger doomed window must be the victim";
  }

  const auto snap = engine.slo().snapshot();
  EXPECT_EQ(snap.shed_routine, 1u);
  EXPECT_EQ(snap.shed_urgent, 0u);
  EXPECT_EQ(snap.completed, 2u);
}

TEST(DeadlineShedding, LearnsSolveTimeFromCompletionsWhenNoEstimateIsPinned) {
  auto cfg = fast_engine(0);
  cfg.queue_capacity = 2;
  cfg.deadline_shedding = true;
  cfg.slo.deadline_ms = 0.0001;  // Far below any real solve: all doomed.
  ReconstructionEngine engine(cfg);

  auto windows = numbered_windows(5);
  // Prime the EWMA with one completed solve.
  ASSERT_TRUE(engine.try_submit(std::move(windows[0])).has_value());
  ASSERT_TRUE(engine.poll().has_value());

  ASSERT_TRUE(engine.try_submit(std::move(windows[1])).has_value());
  ASSERT_TRUE(engine.try_submit(std::move(windows[2])).has_value());
  // With a measured estimate the predictor can now find a victim.
  ASSERT_TRUE(engine.try_submit(std::move(windows[3])).has_value());
  EXPECT_EQ(engine.slo().snapshot().shed_routine, 1u);
  EXPECT_EQ(engine.drain().size(), 2u);
}

}  // namespace
}  // namespace wbsn::host
