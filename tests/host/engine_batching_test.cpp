// Engine-level coverage for this PR's features: the batch_windows knob
// (bit-identity at every width), the bounded LRU sensing-matrix cache,
// and the per-patient SLO breakdown.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <map>
#include <utility>
#include <vector>

#include "host/reconstruction_engine.hpp"
#include "sig/ecg_synth.hpp"
#include "sig/rng.hpp"

namespace wbsn::host {
namespace {

RecordCompressionConfig fast_compression() {
  RecordCompressionConfig cfg;
  cfg.window_samples = 128;
  cfg.cr_percent = 50.0;
  return cfg;
}

EngineConfig fast_engine(int threads, int batch_windows) {
  EngineConfig cfg;
  cfg.threads = threads;
  cfg.batch_windows = batch_windows;
  cfg.fista.max_iterations = 40;
  cfg.fista.debias_iterations = 10;
  return cfg;
}

sig::Record make_record(std::uint64_t seed, int beats) {
  sig::SynthConfig synth;
  synth.num_leads = 2;
  synth.episodes = {{sig::RhythmEpisode::Kind::kSinus, beats}};
  sig::Rng rng(seed);
  return synthesize_ecg(synth, rng);
}

std::vector<CompressedWindow> two_patient_batch() {
  auto batch = compress_record(make_record(31, 8), /*patient_id=*/1, fast_compression());
  auto more = compress_record(make_record(32, 8), /*patient_id=*/2, fast_compression());
  batch.insert(batch.end(), std::make_move_iterator(more.begin()),
               std::make_move_iterator(more.end()));
  return batch;
}

bool bit_identical(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

TEST(EngineBatching, EveryBatchWidthBitIdenticalToSerial) {
  const auto batch = two_patient_batch();
  ReconstructionEngine serial(fast_engine(0, 1));
  const auto reference = serial.reconstruct(batch);
  ASSERT_EQ(reference.windows.size(), batch.size());

  for (const int threads : {0, 2}) {
    for (const int batch_windows : {4, 8}) {
      ReconstructionEngine engine(fast_engine(threads, batch_windows));
      const auto result = engine.reconstruct(batch);
      ASSERT_EQ(result.windows.size(), reference.windows.size());
      for (std::size_t i = 0; i < result.windows.size(); ++i) {
        EXPECT_TRUE(bit_identical(result.windows[i].signal, reference.windows[i].signal))
            << "window " << i << " threads=" << threads
            << " batch_windows=" << batch_windows;
        EXPECT_EQ(result.windows[i].iterations, reference.windows[i].iterations)
            << "window " << i << " threads=" << threads
            << " batch_windows=" << batch_windows;
      }
    }
  }
}

TEST(EngineBatching, MixedMatricesWithinOnePopStillCorrect) {
  // Two patients -> distinct matrix seeds per lead: a worker popping a
  // full batch gets a mix of matrices and must split it into same-matrix
  // groups without mixing windows up.
  const auto batch = two_patient_batch();
  ReconstructionEngine serial(fast_engine(0, 1));
  const auto reference = serial.reconstruct(batch);

  // Submit everything before any worker-free solving happens: serial mode
  // with a huge batch_windows pops the whole backlog in one help_some().
  auto cfg = fast_engine(0, 64);
  ReconstructionEngine engine(cfg);
  for (const auto& window : batch) {
    CompressedWindow copy = window;
    ASSERT_TRUE(engine.try_submit(std::move(copy)).has_value());
  }
  const auto results = engine.drain();
  ASSERT_EQ(results.size(), batch.size());

  std::map<std::pair<std::uint32_t, std::uint32_t>, const WindowResult*> by_id;
  for (const auto& r : results) by_id[{r.patient_id, r.window_index}] = &r;
  for (const auto& expected : reference.windows) {
    const auto found = by_id.find({expected.patient_id, expected.window_index});
    ASSERT_NE(found, by_id.end());
    EXPECT_TRUE(bit_identical(found->second->signal, expected.signal))
        << "patient " << expected.patient_id << " window " << expected.window_index;
  }
}

TEST(EngineBatching, AutoSizedBatchesStayBitIdentical) {
  // batch_windows == 0: each worker sizes its pop from the backlog depth.
  // Width only moves the latency/throughput trade-off — results must stay
  // bit-identical to the serial solo-solve reference at any depth.
  const auto batch = two_patient_batch();
  ReconstructionEngine serial(fast_engine(0, 1));
  const auto reference = serial.reconstruct(batch);

  for (const int threads : {0, 2}) {
    auto cfg = fast_engine(threads, 0);
    cfg.max_auto_batch = 8;
    ReconstructionEngine engine(cfg);
    // Pre-load the whole backlog before any solving in serial mode so the
    // auto-sizer actually sees a deep queue and picks wide batches.
    for (const auto& window : batch) {
      CompressedWindow copy = window;
      engine.submit(std::move(copy));
    }
    const auto results = engine.drain();
    ASSERT_EQ(results.size(), batch.size()) << "threads=" << threads;

    std::map<std::pair<std::uint32_t, std::uint32_t>, const WindowResult*> by_id;
    for (const auto& r : results) by_id[{r.patient_id, r.window_index}] = &r;
    for (const auto& expected : reference.windows) {
      const auto found = by_id.find({expected.patient_id, expected.window_index});
      ASSERT_NE(found, by_id.end());
      EXPECT_TRUE(bit_identical(found->second->signal, expected.signal))
          << "patient " << expected.patient_id << " window " << expected.window_index
          << " threads=" << threads;
    }
  }
}

TEST(EngineBatching, SeedGroupingTurnsInterleavedSubmitsIntoSameMatrixPops) {
  // Two patients compressed under distinct matrix seeds, submitted
  // interleaved A,B,A,B.  In FIFO order a width-2 pop always straddles
  // the seeds, so process_batch solves singletons and the grouped-windows
  // counter stays at zero.  With group_submits_by_seed each arrival is
  // inserted next to the newest queued window sharing its matrix, pops
  // become {A,A},{B,B}, and every window solves inside a >=2 group.
  sig::Record record = make_record(81, 6);
  record.leads.resize(1);
  RecordCompressionConfig seed_a = fast_compression();
  seed_a.matrix_seed = 100;
  RecordCompressionConfig seed_b = fast_compression();
  seed_b.matrix_seed = 110;
  const auto batch_a = compress_record(record, 1, seed_a);
  const auto batch_b = compress_record(record, 2, seed_b);
  ASSERT_GE(batch_a.size(), 2u);
  ASSERT_GE(batch_b.size(), 2u);
  std::vector<CompressedWindow> interleaved;
  for (std::size_t i = 0; i < 2; ++i) {
    interleaved.push_back(batch_a[i]);
    interleaved.push_back(batch_b[i]);
  }

  ReconstructionEngine reference(fast_engine(0, 1));
  const auto expected = reference.reconstruct(interleaved);

  for (const bool grouped : {false, true}) {
    auto cfg = fast_engine(0, 2);  // Width-2 pops; serial so nothing drains early.
    cfg.group_submits_by_seed = grouped;
    ReconstructionEngine engine(cfg);
    for (const auto& window : interleaved) {
      CompressedWindow copy = window;
      ASSERT_TRUE(engine.try_submit(std::move(copy)).has_value());
    }
    const auto results = engine.drain();
    ASSERT_EQ(results.size(), interleaved.size());

    std::map<std::pair<std::uint32_t, std::uint32_t>, const WindowResult*> by_id;
    for (const auto& r : results) by_id[{r.patient_id, r.window_index}] = &r;
    for (const auto& want : expected.windows) {
      const auto found = by_id.find({want.patient_id, want.window_index});
      ASSERT_NE(found, by_id.end());
      EXPECT_TRUE(bit_identical(found->second->signal, want.signal))
          << "grouped=" << grouped << " patient " << want.patient_id << " window "
          << want.window_index;
    }
    const auto snap = engine.slo().snapshot();
    EXPECT_EQ(snap.grouped_windows, grouped ? 4u : 0u)
        << "the counter is the observable proof grouping changed the pops";
  }
}

TEST(EngineCache, LruEvictionBoundsCacheAndKeepsResultsExact) {
  auto unbounded_cfg = fast_engine(0, 1);
  unbounded_cfg.matrix_cache_capacity = 0;
  ReconstructionEngine unbounded(unbounded_cfg);

  auto bounded_cfg = fast_engine(0, 1);
  bounded_cfg.matrix_cache_capacity = 2;
  ReconstructionEngine bounded(bounded_cfg);

  // 5 distinct matrix seeds, visited twice each (second pass re-misses in
  // the bounded engine after eviction and must rebuild identically).
  // Spaced by 10 because the per-lead seed is base + lead: adjacent bases
  // would alias across the record's two leads.
  const auto record = make_record(41, 6);
  std::vector<CompressedWindow> windows;
  for (std::uint64_t seed = 100; seed < 150; seed += 10) {
    RecordCompressionConfig cfg = fast_compression();
    cfg.matrix_seed = seed;
    auto batch = compress_record(record, static_cast<std::uint32_t>(seed), cfg);
    windows.insert(windows.end(), std::make_move_iterator(batch.begin()),
                   std::make_move_iterator(batch.end()));
  }

  for (int pass = 0; pass < 2; ++pass) {
    for (const auto& window : windows) {
      CompressedWindow a = window;
      CompressedWindow b = window;
      ASSERT_TRUE(unbounded.try_submit(std::move(a)).has_value());
      ASSERT_TRUE(bounded.try_submit(std::move(b)).has_value());
      const auto ra = unbounded.poll();
      const auto rb = bounded.poll();
      ASSERT_TRUE(ra.has_value());
      ASSERT_TRUE(rb.has_value());
      EXPECT_TRUE(bit_identical(ra->signal, rb->signal))
          << "pass " << pass << " patient " << window.patient_id << " window "
          << window.window_index;
      EXPECT_LE(bounded.cached_matrices(), 2u);
    }
  }
  // 2 leads x 5 seeds = 10 distinct matrices; the bounded engine held at
  // most 2 while the unbounded one accumulated all of them.
  EXPECT_EQ(unbounded.cached_matrices(), 10u);
  EXPECT_EQ(bounded.cached_matrices(), 2u);
}

TEST(EngineCache, RepeatSeedsStayCached) {
  auto cfg = fast_engine(0, 1);
  cfg.matrix_cache_capacity = 4;
  ReconstructionEngine engine(cfg);
  const auto batch = compress_record(make_record(51, 8), 7, fast_compression());
  for (int pass = 0; pass < 3; ++pass) {
    for (const auto& window : batch) {
      CompressedWindow copy = window;
      ASSERT_TRUE(engine.try_submit(std::move(copy)).has_value());
      ASSERT_TRUE(engine.poll().has_value());
    }
  }
  EXPECT_EQ(engine.cached_matrices(), 2u);  // One per lead, never evicted.
}

TEST(EnginePatientSlo, PerPatientBreakdownTracksCompletions) {
  auto cfg = fast_engine(2, 2);
  cfg.slo.deadline_ms = 1e-6;  // Absurdly tight: every window violates.
  ReconstructionEngine engine(cfg);

  const auto batch = two_patient_batch();
  std::map<std::uint32_t, std::size_t> expected_counts;
  for (const auto& window : batch) {
    ++expected_counts[window.patient_id];
    CompressedWindow copy = window;
    engine.submit(std::move(copy));
  }
  const auto results = engine.drain();
  ASSERT_EQ(results.size(), batch.size());

  const auto per_patient = engine.patient_slo_snapshots();
  ASSERT_EQ(per_patient.size(), expected_counts.size());
  std::uint64_t total_completed = 0;
  for (std::size_t i = 0; i < per_patient.size(); ++i) {
    const auto& p = per_patient[i];
    if (i > 0) {
      EXPECT_LT(per_patient[i - 1].patient_id, p.patient_id) << "sorted order";
    }
    ASSERT_TRUE(expected_counts.count(p.patient_id));
    EXPECT_EQ(p.slo.submitted, expected_counts[p.patient_id]);
    EXPECT_EQ(p.slo.completed, expected_counts[p.patient_id]);
    EXPECT_EQ(p.slo.deadline_violations, expected_counts[p.patient_id]);
    EXPECT_EQ(p.slo.in_flight, 0u);
    EXPECT_GT(p.slo.p50_ms, 0.0);
    EXPECT_GE(p.slo.max_ms, p.slo.p50_ms * 0.5);
    total_completed += p.slo.completed;
  }
  EXPECT_EQ(total_completed, batch.size());

  // Engine-wide tracker still aggregates everything.
  EXPECT_EQ(engine.slo().snapshot().completed, batch.size());
}

TEST(EnginePatientSlo, TrackedPatientCapBoundsTheMap) {
  auto cfg = fast_engine(0, 1);
  cfg.max_tracked_patients = 3;
  ReconstructionEngine engine(cfg);

  const auto windows = compress_record(make_record(71, 4), 0, fast_compression());
  ASSERT_FALSE(windows.empty());
  // 6 distinct patient ids, one window each: only the first 3 get trackers.
  for (std::uint32_t patient = 0; patient < 6; ++patient) {
    CompressedWindow copy = windows.front();
    copy.patient_id = patient;
    ASSERT_TRUE(engine.try_submit(std::move(copy)).has_value());
    ASSERT_TRUE(engine.poll().has_value());
  }
  const auto per_patient = engine.patient_slo_snapshots();
  ASSERT_EQ(per_patient.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(per_patient[i].patient_id, i);
    EXPECT_EQ(per_patient[i].slo.completed, 1u);
  }
  // Untracked ids still count in the engine-wide tracker.
  EXPECT_EQ(engine.slo().snapshot().completed, 6u);
}

TEST(EnginePatientSlo, DisabledMeansEmpty) {
  auto cfg = fast_engine(0, 1);
  cfg.per_patient_slo = false;
  ReconstructionEngine engine(cfg);
  const auto batch = compress_record(make_record(61, 4), 3, fast_compression());
  for (const auto& window : batch) {
    CompressedWindow copy = window;
    ASSERT_TRUE(engine.try_submit(std::move(copy)).has_value());
    ASSERT_TRUE(engine.poll().has_value());
  }
  EXPECT_TRUE(engine.patient_slo_snapshots().empty());
}

}  // namespace
}  // namespace wbsn::host
