// PayloadPool / ObjectPool semantics, and the end-to-end recycling
// contract through the engine and fabric: buffers checked out at submit
// travel by move (pointer identity — never copied), come back to the pool
// after the solve, and the same heap blocks serve the next window.
// Exhaustion must degrade to counted plain allocation, never block, and a
// pool shared through EngineConfig must survive a fabric resize because
// every rebuilt shard inherits the same object.
#include "host/payload_pool.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "host/reconstruction_engine.hpp"
#include "host/reconstruction_fabric.hpp"
#include "sig/ecg_synth.hpp"
#include "sig/rng.hpp"

namespace wbsn::host {
namespace {

std::vector<CompressedWindow> patient_windows(std::uint32_t patient_id, int beats) {
  sig::SynthConfig synth;
  synth.num_leads = 1;
  synth.episodes = {{sig::RhythmEpisode::Kind::kSinus, beats}};
  sig::Rng rng(0x900D0000ULL + patient_id);
  const auto record = synthesize_ecg(synth, rng);

  RecordCompressionConfig compression;
  compression.window_samples = 128;
  compression.cr_percent = 60.0;
  return compress_record(record, patient_id, compression);
}

/// Copies a template's payload into a pooled shell (the producer idiom).
CompressedWindow pooled_copy(PayloadPool& pool, const CompressedWindow& src) {
  CompressedWindow window = pool.acquire_window();
  window.patient_id = src.patient_id;
  window.window_index = src.window_index;
  window.matrix_seed = src.matrix_seed;
  window.window_samples = src.window_samples;
  window.ones_per_column = src.ones_per_column;
  window.priority = src.priority;
  window.measurements.assign(src.measurements.begin(), src.measurements.end());
  window.reference.assign(src.reference.begin(), src.reference.end());
  return window;
}

TEST(PayloadPool, RoundTripReturnsTheSameBuffer) {
  PayloadPool pool;
  auto buf = pool.acquire_measurements();
  buf.resize(64, 1.5);
  const double* data = buf.data();
  pool.recycle_measurements(std::move(buf));

  auto again = pool.acquire_measurements();
  EXPECT_EQ(again.data(), data);      // The exact heap block came back.
  EXPECT_TRUE(again.empty());          // Cleared...
  EXPECT_GE(again.capacity(), 64u);    // ...but capacity-warm.

  const auto stats = pool.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.recycled, 1u);
  EXPECT_EQ(stats.dropped, 0u);
}

TEST(PayloadPool, FreelistsAreRoleKeyed) {
  PayloadPool pool;
  auto measurement = pool.acquire_measurements();
  measurement.resize(8);
  const double* data = measurement.data();
  pool.recycle_measurements(std::move(measurement));

  // A signal acquire must not steal the measurement freelist's buffer.
  auto signal = pool.acquire_signal();
  EXPECT_NE(signal.data(), data);
  EXPECT_EQ(pool.stats().misses, 2u);
}

TEST(PayloadPool, ExhaustionDegradesToCountedAllocation) {
  PayloadPoolConfig cfg;
  cfg.capacity = 2;
  PayloadPool pool(cfg);

  // Three recycles into a two-slot freelist: the third is dropped (freed).
  for (int i = 0; i < 3; ++i) {
    std::vector<double> buf(16, 0.0);
    pool.recycle_signal(std::move(buf));
  }
  auto stats = pool.stats();
  EXPECT_EQ(stats.recycled, 2u);
  EXPECT_EQ(stats.dropped, 1u);

  // Three acquires from those two slots: the third is a fresh allocation
  // (a miss), handed out without blocking.
  auto a = pool.acquire_signal();
  auto b = pool.acquire_signal();
  auto c = pool.acquire_signal();
  stats = pool.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
  c.resize(1);  // Still a perfectly usable vector.
  EXPECT_EQ(c.size(), 1u);
}

TEST(PayloadPool, WindowAndResultRecyclersSplitByRole) {
  PayloadPool pool;
  CompressedWindow window = pool.acquire_window();
  window.measurements.resize(32);
  window.reference.resize(128);
  pool.recycle(std::move(window));

  WindowResult result;
  result.signal.resize(128);
  pool.recycle(std::move(result));

  const auto stats = pool.stats();
  EXPECT_EQ(stats.recycled, 3u);  // measurements + reference + signal.
}

// The end-to-end move contract: the measurement buffer the producer filled
// travels through submit -> queue -> solve untouched (no copy anywhere on
// the path), is recycled by the engine after the solve, and the very same
// heap block serves the producer's next acquire.
TEST(PayloadPool, MeasurementBufferSurvivesSubmitSolvePollByPointerIdentity) {
  auto pool = std::make_shared<PayloadPool>();
  EngineConfig cfg;
  cfg.payload_pool = pool;
  ReconstructionEngine engine(cfg);

  const auto traffic = patient_windows(7, 3);
  ASSERT_GE(traffic.size(), 2u);

  CompressedWindow first = pooled_copy(*pool, traffic[0]);
  const double* measurement_block = first.measurements.data();
  ASSERT_NE(measurement_block, nullptr);

  ASSERT_TRUE(engine.try_submit(std::move(first)).has_value());
  auto result = engine.poll();
  ASSERT_TRUE(result.has_value());
  pool->recycle(std::move(*result));

  // The engine recycled the measurement buffer after the solve; the next
  // producer acquire gets the identical block — which is only possible if
  // nothing on the submit path copied it.
  CompressedWindow second = pooled_copy(*pool, traffic[1]);
  EXPECT_EQ(second.measurements.data(), measurement_block);

  ASSERT_TRUE(engine.try_submit(std::move(second)).has_value());
  auto second_result = engine.poll();
  ASSERT_TRUE(second_result.has_value());

  // Keeping a result is just not recycling it — move-out semantics.
  std::vector<double> kept = std::move(second_result->signal);
  EXPECT_FALSE(kept.empty());
}

// Steady-state cycling: after the first lap primes the freelists, every
// subsequent lap's acquires are hits drawn from a fixed set of buffers.
TEST(PayloadPool, SteadyStateCyclesAFixedBufferSet) {
  auto pool = std::make_shared<PayloadPool>();
  EngineConfig cfg;
  cfg.payload_pool = pool;
  cfg.batch_windows = 0;
  ReconstructionEngine engine(cfg);

  const auto traffic = patient_windows(3, 4);
  ASSERT_GE(traffic.size(), 3u);

  std::set<const double*> blocks_seen;
  for (int lap = 0; lap < 4; ++lap) {
    for (const auto& tmpl : traffic) {
      CompressedWindow window = pooled_copy(*pool, tmpl);
      blocks_seen.insert(window.measurements.data());
      ASSERT_TRUE(engine.try_submit(std::move(window)).has_value());
      auto result = engine.poll();
      ASSERT_TRUE(result.has_value());
      pool->recycle(std::move(*result));
    }
  }
  // Submit-then-poll in lockstep keeps exactly one window in flight, so
  // one measurement block serves every lap after the first allocates it.
  EXPECT_EQ(blocks_seen.size(), 1u);

  const auto stats = pool.get()->stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_EQ(stats.dropped, 0u);
  // Only the very first window of each role missed.
  EXPECT_LE(stats.misses, 3u);
}

// A fabric resize rebuilds engines; they must inherit the same pool
// object through EngineConfig::payload_pool, so recycling continues across
// the epoch flip (no leaked buffers, no second pool).
TEST(PayloadPool, PoolSurvivesFabricResize) {
  auto pool = std::make_shared<PayloadPool>();
  FabricConfig cfg;
  cfg.shards = 2;
  cfg.engine.payload_pool = pool;
  ReconstructionFabric fabric(cfg);

  const auto traffic = patient_windows(11, 4);
  ASSERT_GE(traffic.size(), 4u);

  const auto run_wave = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      fabric.submit(pooled_copy(*pool, traffic[i]));
    }
    std::size_t polled = 0;
    while (polled < end - begin) {
      if (auto result = fabric.poll()) {
        pool->recycle(std::move(*result));
        ++polled;
      }
    }
  };

  run_wave(0, 2);
  const auto before = pool->stats();
  const auto report = fabric.resize(3);
  EXPECT_EQ(report.shards_after, 3u);

  run_wave(2, traffic.size());
  const auto after = pool->stats();
  // The post-resize wave kept recycling into — and hitting — the same
  // pool, through engines constructed during the resize.
  EXPECT_GT(after.recycled, before.recycled);
  EXPECT_GT(after.hits, before.hits);
}

/// Counts every copy/move so a test can assert a code path did neither.
struct CopyCounter {
  static int copies;
  static int moves;
  int value = 0;
  CopyCounter() = default;
  CopyCounter(const CopyCounter& other) : value(other.value) { ++copies; }
  CopyCounter& operator=(const CopyCounter& other) {
    value = other.value;
    ++copies;
    return *this;
  }
  CopyCounter(CopyCounter&& other) noexcept : value(other.value) { ++moves; }
  CopyCounter& operator=(CopyCounter&& other) noexcept {
    value = other.value;
    ++moves;
    return *this;
  }
};
int CopyCounter::copies = 0;
int CopyCounter::moves = 0;

// ObjectPool must hand nodes around strictly by pointer: a recycled node
// is returned as-is (same address, zero copies/moves of T), and capacity
// overflow deletes instead of growing.
TEST(ObjectPool, RecyclesNodesByPointerWithoutCopies) {
  CopyCounter::copies = 0;
  CopyCounter::moves = 0;
  ObjectPool<CopyCounter> pool(1);

  CopyCounter* node = pool.acquire();
  node->value = 42;
  pool.recycle(node);
  CopyCounter* again = pool.acquire();
  EXPECT_EQ(again, node);        // Same allocation back.
  EXPECT_EQ(again->value, 42);   // Stored as-is: state is the caller's job.

  CopyCounter* extra = pool.acquire();  // Freelist empty: a counted miss.
  EXPECT_NE(extra, nullptr);
  pool.recycle(again);
  pool.recycle(extra);  // Past capacity 1: deleted, counted as a drop.

  const auto stats = pool.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.recycled, 2u);  // `node` parked twice, once per lap.
  EXPECT_EQ(stats.dropped, 1u);
  EXPECT_EQ(CopyCounter::copies, 0);
  EXPECT_EQ(CopyCounter::moves, 0);
}

}  // namespace
}  // namespace wbsn::host
