// The ISSUE 7 acceptance test: the fabric's PR 5 guarantees must survive
// real process boundaries.  Each shard here is a fork/exec'd shard_serverd
// daemon (path injected at build time via WBSN_SHARD_SERVERD_PATH), the
// client talks to it over loopback TCP, and the topology is grown and
// shrunk live with traffic in flight.  Assertions: bit-identical
// reconstructed signals vs a serial in-process reference, unique composite
// tickets round-tripping through reshards, and counter conservation
// (submitted == completed + shed, attempts == submitted + rejected) across
// the whole topology history including retired daemons.
//
// Daemon lifecycle: shard_serverd prints `PORT <n>` once listening (the
// readiness handshake) and runs stop_on_bye, so RoutingClient::retire()'s
// BYE — and shutdown(send_bye=true) at the end — are also the daemons'
// shutdown signal.  Every child is waitpid()ed and must exit 0.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "cs/pipeline.hpp"
#include "host/reconstruction_fabric.hpp"
#include "net/routing_client.hpp"
#include "sig/ecg_synth.hpp"
#include "sig/rng.hpp"

namespace wbsn::net {
namespace {

using host::CompressedWindow;
using host::EngineConfig;
using host::ReconstructionEngine;
using host::WindowResult;
using WindowKey = std::pair<std::uint32_t, std::uint32_t>;

bool bit_identical(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

std::vector<CompressedWindow> fleet_traffic(int patients, int beats_per_patient) {
  std::vector<CompressedWindow> traffic;
  for (int p = 0; p < patients; ++p) {
    sig::SynthConfig synth;
    synth.num_leads = 1;
    synth.episodes = {{sig::RhythmEpisode::Kind::kSinus, beats_per_patient}};
    sig::Rng rng(0x4E7A11ULL + static_cast<std::uint64_t>(p));
    const auto record = synthesize_ecg(synth, rng);

    host::RecordCompressionConfig compression;
    compression.window_samples = 128;
    compression.cr_percent = 50.0;
    auto windows = host::compress_record(record, static_cast<std::uint32_t>(p), compression);
    traffic.insert(traffic.end(), std::make_move_iterator(windows.begin()),
                   std::make_move_iterator(windows.end()));
  }
  for (std::size_t i = 0; i < traffic.size(); ++i) {
    if (i % 3 == 0) traffic[i].priority = cs::WindowPriority::kUrgent;
  }
  return traffic;
}

std::map<WindowKey, WindowResult> serial_reference(
    const std::vector<CompressedWindow>& traffic) {
  // Default engine config: the daemons solve with stock FISTA settings
  // (the CLI exposes capacity/deadline knobs, not solver internals), so
  // the reference must too.
  EngineConfig cfg;
  cfg.threads = 0;
  std::map<WindowKey, WindowResult> reference;
  ReconstructionEngine serial(cfg);
  for (const auto& window : traffic) {
    CompressedWindow copy = window;
    serial.submit(std::move(copy));
  }
  for (auto& result : serial.drain()) {
    reference.emplace(WindowKey{result.patient_id, result.window_index}, std::move(result));
  }
  return reference;
}

/// One shard_serverd child process.  Spawns the daemon with its stdout on
/// a pipe, blocks until the `PORT <n>` readiness line arrives, and insists
/// on a clean exit (the BYE path) in reap().
class ShardDaemon {
 public:
  ShardDaemon() { spawn(); }

 private:
  // gtest fatal assertions need a void function; the constructor defers here.
  void spawn() {
    int out[2] = {-1, -1};
    EXPECT_EQ(::pipe(out), 0);
    pid_ = ::fork();
    ASSERT_NE(pid_, -1);
    if (pid_ == 0) {
      // Child: stdout -> pipe, then become the daemon.
      ::dup2(out[1], STDOUT_FILENO);
      ::close(out[0]);
      ::close(out[1]);
      const std::string scale = std::to_string(cs::measurement_scale_mv(sig::AdcConfig{}));
      ::execl(WBSN_SHARD_SERVERD_PATH, "shard_serverd", "--threads", "1",
              "--fixed-scale", scale.c_str(), static_cast<char*>(nullptr));
      std::perror("execl shard_serverd");
      ::_exit(127);
    }
    ::close(out[1]);

    // Read the readiness line: "PORT <n>\n".
    std::string line;
    char ch = 0;
    while (::read(out[0], &ch, 1) == 1 && ch != '\n') line.push_back(ch);
    ::close(out[0]);
    unsigned port = 0;
    ASSERT_EQ(std::sscanf(line.c_str(), "PORT %u", &port), 1)
        << "daemon readiness line was: '" << line << "'";
    port_ = static_cast<std::uint16_t>(port);
  }

 public:
  ~ShardDaemon() {
    if (pid_ > 0) {
      ::kill(pid_, SIGTERM);
      int status = 0;
      ::waitpid(pid_, &status, 0);
    }
  }

  /// Waits for the daemon to exit on its own (after BYE) and asserts a
  /// clean status.  After this the destructor has nothing to do.
  void reap() {
    ASSERT_GT(pid_, 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid_, &status, 0), pid_);
    EXPECT_TRUE(WIFEXITED(status)) << "daemon killed by signal " << WTERMSIG(status);
    if (WIFEXITED(status)) {
      EXPECT_EQ(WEXITSTATUS(status), 0);
    }
    pid_ = -1;
  }

  ShardEndpoint endpoint() const { return {"127.0.0.1", port_}; }

 private:
  pid_t pid_ = -1;
  std::uint16_t port_ = 0;
};

TEST(MultiProcessReshard, LiveGrowAndShrinkAcrossProcessBoundaries) {
  const auto traffic = fleet_traffic(/*patients=*/6, /*beats_per_patient=*/3);
  const auto reference = serial_reference(traffic);

  // Four real daemon processes; the topology never has fewer than two live.
  ShardDaemon d0, d1, d2, d3;

  RoutingClientConfig client_cfg;
  client_cfg.wire.fixed_scale = cs::measurement_scale_mv(sig::AdcConfig{});
  RoutingClient client(client_cfg);
  ASSERT_TRUE(client.connect({d0.endpoint(), d1.endpoint()}));
  ASSERT_EQ(client.shard_count(), 2u);

  std::map<WindowKey, WindowResult> results;
  std::set<std::uint64_t> tickets;
  const auto keep = [&](WindowResult&& r) {
    const WindowKey key{r.patient_id, r.window_index};
    EXPECT_TRUE(tickets.insert(r.ticket).second) << "duplicate ticket";
    EXPECT_TRUE(results.emplace(key, std::move(r)).second) << "duplicate result";
  };
  const auto pump = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      CompressedWindow copy = traffic[i];
      const auto ticket = client.submit(std::move(copy));
      ASSERT_TRUE(ticket.has_value());
      EXPECT_EQ(host::ReconstructionFabric::ticket_epoch(*ticket), client.epoch());
      if (auto r = client.poll()) keep(std::move(*r));
    }
  };

  const std::size_t third = traffic.size() / 3;
  pump(0, third);

  // Live grow 2 -> 4 with traffic in flight.
  ASSERT_TRUE(client.set_topology(
      {d0.endpoint(), d1.endpoint(), d2.endpoint(), d3.endpoint()}));
  EXPECT_EQ(client.epoch(), 1u);
  EXPECT_EQ(client.shard_count(), 4u);
  pump(third, 2 * third);

  // Live shrink 4 -> 2: d0 and d2 retire mid-stream.  retire() dismisses
  // them with BYE, which is also their process-exit signal.
  ASSERT_TRUE(client.set_topology({d1.endpoint(), d3.endpoint()}));
  EXPECT_EQ(client.epoch(), 2u);
  EXPECT_EQ(client.shard_count(), 2u);
  d0.reap();
  d2.reap();
  pump(2 * third, traffic.size());

  for (auto&& r : client.drain()) keep(std::move(r));
  ASSERT_EQ(results.size(), traffic.size());
  for (const auto& [key, expected] : reference) {
    const auto found = results.find(key);
    ASSERT_NE(found, results.end());
    EXPECT_TRUE(bit_identical(found->second.signal, expected.signal))
        << "patient " << key.first << " window " << key.second
        << " diverged across process boundaries";
    EXPECT_EQ(found->second.iterations, expected.iterations);
    EXPECT_EQ(found->second.snr_db, expected.snr_db);
  }

  // Conservation across the whole topology history: the two retired
  // daemons' final snapshots are folded into the aggregate.
  const auto agg = client.aggregate_snapshot();
  EXPECT_EQ(agg.submitted, traffic.size());
  EXPECT_EQ(agg.completed, traffic.size());
  EXPECT_EQ(agg.retrieved, traffic.size());
  EXPECT_EQ(agg.rejected, 0u);
  EXPECT_EQ(agg.shed_routine + agg.shed_urgent, 0u);
  EXPECT_EQ(agg.submitted, agg.completed + agg.shed_routine + agg.shed_urgent);
  EXPECT_EQ(agg.unsolved, 0u);
  EXPECT_EQ(agg.ready, 0u);

  // Dismiss the two survivors and verify they exit cleanly too.
  client.shutdown(/*send_bye=*/true);
  d1.reap();
  d3.reap();
}

TEST(MultiProcessReshard, PipelinedSubmitsConserveAcrossALiveReshard) {
  // The ISSUE 8 acceptance variant: same process-boundary conservation
  // contract, but every window goes through the v2 pipelined submit path
  // (batched frames, deferred tickets).  A live grow lands mid-stream
  // with batches still unflushed — set_topology must sync the pipelines
  // before the epoch flips, and the deferred tickets must still compose
  // with their *submission* epoch.
  const auto traffic = fleet_traffic(/*patients=*/6, /*beats_per_patient=*/2);
  const auto reference = serial_reference(traffic);

  ShardDaemon d0, d1, d2;
  RoutingClientConfig client_cfg;
  client_cfg.wire.fixed_scale = cs::measurement_scale_mv(sig::AdcConfig{});
  client_cfg.pipeline_depth = 2;
  client_cfg.submit_batch_windows = 4;
  RoutingClient client(client_cfg);
  ASSERT_TRUE(client.connect({d0.endpoint(), d1.endpoint()}));
  ASSERT_EQ(client.shard_wire_version(0), 2u) << "daemons must negotiate v2 by default";

  const std::size_t half = traffic.size() / 2;
  std::vector<std::size_t> expected_owner(traffic.size());
  for (std::size_t i = 0; i < half; ++i) {
    CompressedWindow copy = traffic[i];
    expected_owner[i] = client.owner(copy.patient_id);
    ASSERT_TRUE(client.submit_pipelined(std::move(copy)));
  }

  // Live grow 2 -> 3 with batches staged and ACKs outstanding.
  ASSERT_TRUE(client.set_topology({d0.endpoint(), d1.endpoint(), d2.endpoint()}));
  EXPECT_EQ(client.epoch(), 1u);
  for (std::size_t i = half; i < traffic.size(); ++i) {
    CompressedWindow copy = traffic[i];
    expected_owner[i] = client.owner(copy.patient_id);
    ASSERT_TRUE(client.submit_pipelined(std::move(copy)));
  }

  const auto tickets = client.flush_submits();
  ASSERT_EQ(tickets.size(), traffic.size());
  std::set<std::uint64_t> unique;
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    ASSERT_TRUE(tickets[i].has_value()) << "window " << i << " lost its ticket";
    EXPECT_TRUE(unique.insert(*tickets[i]).second) << "duplicate ticket";
    EXPECT_EQ(host::ReconstructionFabric::ticket_epoch(*tickets[i]), i < half ? 0u : 1u)
        << "window " << i << " must compose with its submission epoch";
    EXPECT_EQ(host::ReconstructionFabric::ticket_shard(*tickets[i]), expected_owner[i])
        << "window " << i;
  }

  std::map<WindowKey, WindowResult> results;
  std::set<std::uint64_t> result_tickets;
  for (auto&& r : client.drain()) {
    const WindowKey key{r.patient_id, r.window_index};
    EXPECT_TRUE(result_tickets.insert(r.ticket).second) << "duplicate ticket";
    EXPECT_TRUE(results.emplace(key, std::move(r)).second) << "duplicate result";
  }
  ASSERT_EQ(results.size(), traffic.size());
  EXPECT_EQ(result_tickets, unique)
      << "every result must echo the composite ticket its flush returned";
  for (const auto& [key, expected] : reference) {
    const auto found = results.find(key);
    ASSERT_NE(found, results.end());
    EXPECT_TRUE(bit_identical(found->second.signal, expected.signal))
        << "patient " << key.first << " window " << key.second
        << " diverged under pipelining across process boundaries";
    EXPECT_EQ(found->second.iterations, expected.iterations);
  }

  const auto agg = client.aggregate_snapshot();
  EXPECT_EQ(agg.submitted, traffic.size());
  EXPECT_EQ(agg.completed, traffic.size());
  EXPECT_EQ(agg.retrieved, traffic.size());
  EXPECT_EQ(agg.rejected, 0u);
  EXPECT_EQ(agg.shed_routine + agg.shed_urgent, 0u);
  EXPECT_EQ(agg.unsolved, 0u);
  EXPECT_EQ(agg.ready, 0u);

  client.shutdown(/*send_bye=*/true);
  d0.reap();
  d1.reap();
  d2.reap();
}

TEST(MultiProcessReshard, SloHistorySurvivesDaemonMigration) {
  const auto traffic = fleet_traffic(/*patients=*/4, /*beats_per_patient=*/2);

  ShardDaemon d0, d1, d2;
  RoutingClientConfig client_cfg;
  client_cfg.wire.fixed_scale = cs::measurement_scale_mv(sig::AdcConfig{});
  RoutingClient client(client_cfg);
  ASSERT_TRUE(client.connect({d0.endpoint(), d1.endpoint()}));

  std::map<std::uint32_t, std::uint64_t> per_patient_submitted;
  for (const auto& window : traffic) {
    CompressedWindow copy = window;
    ASSERT_TRUE(client.submit(std::move(copy)).has_value());
    ++per_patient_submitted[window.patient_id];
  }
  (void)client.drain();

  // Rotate the fleet twice: d0 retires, then d1 retires.  Every patient's
  // SLO history must follow them through both migrations.
  ASSERT_TRUE(client.set_topology({d1.endpoint(), d2.endpoint()}));
  d0.reap();
  ASSERT_TRUE(client.set_topology({d2.endpoint()}));
  d1.reap();

  for (const auto& [patient, submitted] : per_patient_submitted) {
    const auto state = client.patient_slo_state(patient);
    ASSERT_TRUE(state.has_value()) << "patient " << patient << " lost their tracker";
    EXPECT_EQ(state->submitted, submitted) << "patient " << patient;
    EXPECT_EQ(state->completed, submitted) << "patient " << patient;
    EXPECT_EQ(state->retrieved, submitted) << "patient " << patient;
  }

  client.shutdown(/*send_bye=*/true);
  d2.reap();
}

}  // namespace
}  // namespace wbsn::net
