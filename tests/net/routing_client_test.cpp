// RoutingClient <-> ShardServer integration over real loopback sockets
// (servers run in-process on their own threads; the fork/exec variant
// lives in multiprocess_reshard_test.cpp).  Verifies the fabric's
// guarantees survive the wire: bit-identical reconstructions vs the
// serial in-process reference, composite-ticket round trips, SLO history
// migration across a live reshard, counter conservation across retired
// shards, and the protocol-level rejection paths (unknown version,
// talking before HELLO).

#include "net/routing_client.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "cs/pipeline.hpp"
#include "host/payload_pool.hpp"
#include "host/reconstruction_fabric.hpp"
#include "net/crc32c.hpp"
#include "net/shard_server.hpp"
#include "net/socket.hpp"
#include "sig/ecg_synth.hpp"
#include "sig/rng.hpp"

namespace wbsn::net {
namespace {

using host::CompressedWindow;
using host::EngineConfig;
using host::ReconstructionEngine;
using host::WindowResult;
using WindowKey = std::pair<std::uint32_t, std::uint32_t>;

bool bit_identical(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

EngineConfig fast_engine(int threads) {
  EngineConfig cfg;
  cfg.threads = threads;
  cfg.fista.max_iterations = 25;
  cfg.fista.debias_iterations = 5;
  return cfg;
}

std::vector<CompressedWindow> fleet_traffic(int patients, int beats_per_patient) {
  std::vector<CompressedWindow> traffic;
  for (int p = 0; p < patients; ++p) {
    sig::SynthConfig synth;
    synth.num_leads = 1;
    synth.episodes = {{sig::RhythmEpisode::Kind::kSinus, beats_per_patient}};
    sig::Rng rng(0x4E7A11ULL + static_cast<std::uint64_t>(p));
    const auto record = synthesize_ecg(synth, rng);

    host::RecordCompressionConfig compression;
    compression.window_samples = 128;
    compression.cr_percent = 50.0;
    auto windows = host::compress_record(record, static_cast<std::uint32_t>(p), compression);
    traffic.insert(traffic.end(), std::make_move_iterator(windows.begin()),
                   std::make_move_iterator(windows.end()));
  }
  for (std::size_t i = 0; i < traffic.size(); ++i) {
    if (i % 3 == 0) traffic[i].priority = cs::WindowPriority::kUrgent;
  }
  return traffic;
}

/// One in-process shard: a ShardServer running its event loop on a thread.
struct LocalShard {
  std::unique_ptr<ShardServer> server;
  std::thread loop;

  explicit LocalShard(ShardServerConfig cfg) {
    server = std::make_unique<ShardServer>(std::move(cfg));
    EXPECT_TRUE(server->start());
    loop = std::thread([s = server.get()] { s->run(); });
  }

  explicit LocalShard(int threads, std::uint8_t max_version = kWireVersionMax,
                      double hint_cr = 0.0)
      : LocalShard([&] {
          ShardServerConfig cfg;
          cfg.engine = fast_engine(threads);
          // The node path emits exact fixed-point multiples; advertising the
          // scale exercises the compact coding end to end.
          cfg.wire.fixed_scale = cs::measurement_scale_mv(sig::AdcConfig{});
          cfg.max_wire_version = max_version;
          // Tests that opt into CR hints want determinism, not a race with
          // the backlog: advertise unconditionally.
          cfg.hint_cr_percent = hint_cr;
          cfg.hint_backlog_deadlines = 0.0;
          return cfg;
        }()) {}

  ~LocalShard() { kill(); }

  /// Stops the server loop and joins it — the in-process stand-in for a
  /// shard crash (the engine and its backlog are simply gone to the
  /// client; only the listening port stops answering).
  void kill() {
    server->stop();
    if (loop.joinable()) loop.join();
  }

  ShardEndpoint endpoint() const { return {"127.0.0.1", server->port()}; }
};

RoutingClientConfig client_config() {
  RoutingClientConfig cfg;
  cfg.wire.fixed_scale = cs::measurement_scale_mv(sig::AdcConfig{});
  return cfg;
}

std::map<WindowKey, WindowResult> serial_reference(
    const std::vector<CompressedWindow>& traffic) {
  std::map<WindowKey, WindowResult> reference;
  ReconstructionEngine serial(fast_engine(0));
  for (const auto& window : traffic) {
    CompressedWindow copy = window;
    serial.submit(std::move(copy));
  }
  for (auto& result : serial.drain()) {
    reference.emplace(WindowKey{result.patient_id, result.window_index}, std::move(result));
  }
  return reference;
}

TEST(RoutingClient, RoundTripMatchesSerialReferenceBitForBit) {
  const auto traffic = fleet_traffic(/*patients=*/6, /*beats_per_patient=*/3);
  const auto reference = serial_reference(traffic);

  LocalShard a(2), b(2);
  RoutingClient client(client_config());
  ASSERT_TRUE(client.connect({a.endpoint(), b.endpoint()}));

  std::set<std::uint64_t> submit_tickets;
  for (const auto& window : traffic) {
    CompressedWindow copy = window;
    const auto ticket = client.submit(std::move(copy));
    ASSERT_TRUE(ticket.has_value());
    EXPECT_TRUE(submit_tickets.insert(*ticket).second) << "tickets must be unique";
    // Composite form: epoch 0, the owner shard of the patient.
    EXPECT_EQ(host::ReconstructionFabric::ticket_epoch(*ticket), 0u);
    EXPECT_EQ(host::ReconstructionFabric::ticket_shard(*ticket),
              client.owner(window.patient_id));
  }

  auto results = client.drain();
  ASSERT_EQ(results.size(), traffic.size());
  std::set<std::uint64_t> result_tickets;
  for (const auto& result : results) {
    result_tickets.insert(result.ticket);
    const auto ref = reference.find({result.patient_id, result.window_index});
    ASSERT_NE(ref, reference.end());
    EXPECT_TRUE(bit_identical(result.signal, ref->second.signal))
        << "patient " << result.patient_id << " window " << result.window_index
        << " diverged across the wire";
    EXPECT_EQ(result.iterations, ref->second.iterations);
    EXPECT_EQ(result.snr_db, ref->second.snr_db);
  }
  EXPECT_EQ(result_tickets, submit_tickets)
      << "every result must carry the composite ticket its submit returned";

  const auto agg = client.aggregate_snapshot();
  EXPECT_EQ(agg.submitted, traffic.size());
  EXPECT_EQ(agg.completed, traffic.size());
  EXPECT_EQ(agg.retrieved, traffic.size());
  EXPECT_EQ(agg.unsolved, 0u);
  EXPECT_EQ(agg.ready, 0u);
  client.shutdown(/*send_bye=*/false);
}

TEST(RoutingClient, LiveGrowAndShrinkConserveEverything) {
  const auto traffic = fleet_traffic(/*patients=*/6, /*beats_per_patient=*/3);
  const auto reference = serial_reference(traffic);

  LocalShard a(1), b(1), c(1);
  RoutingClient client(client_config());
  ASSERT_TRUE(client.connect({a.endpoint(), b.endpoint()}));

  std::map<WindowKey, WindowResult> results;
  const auto keep = [&](WindowResult&& r) {
    const WindowKey key{r.patient_id, r.window_index};
    EXPECT_TRUE(results.emplace(key, std::move(r)).second) << "duplicate result";
  };

  const std::size_t third = traffic.size() / 3;
  std::size_t i = 0;
  for (; i < third; ++i) {
    CompressedWindow copy = traffic[i];
    ASSERT_TRUE(client.submit(std::move(copy)).has_value());
    if (auto r = client.poll()) keep(std::move(*r));
  }

  // Live grow 2 -> 3 with traffic in flight.
  ASSERT_TRUE(client.set_topology({a.endpoint(), b.endpoint(), c.endpoint()}));
  EXPECT_EQ(client.epoch(), 1u);
  EXPECT_EQ(client.shard_count(), 3u);
  for (; i < 2 * third; ++i) {
    CompressedWindow copy = traffic[i];
    ASSERT_TRUE(client.submit(std::move(copy)).has_value());
    if (auto r = client.poll()) keep(std::move(*r));
  }

  // Live shrink 3 -> 1: shards a and c retire, their parked results and
  // counters fold into the client.
  ASSERT_TRUE(client.set_topology({b.endpoint()}));
  EXPECT_EQ(client.epoch(), 2u);
  EXPECT_EQ(client.shard_count(), 1u);
  for (; i < traffic.size(); ++i) {
    CompressedWindow copy = traffic[i];
    ASSERT_TRUE(client.submit(std::move(copy)).has_value());
  }

  for (auto&& r : client.drain()) keep(std::move(r));
  ASSERT_EQ(results.size(), traffic.size());
  for (const auto& [key, expected] : reference) {
    const auto found = results.find(key);
    ASSERT_NE(found, results.end());
    EXPECT_TRUE(bit_identical(found->second.signal, expected.signal))
        << "patient " << key.first << " window " << key.second
        << " diverged across reshard";
    EXPECT_EQ(found->second.iterations, expected.iterations);
  }

  // Counter conservation across the whole topology history, including the
  // two retired shards' folded snapshots.
  const auto agg = client.aggregate_snapshot();
  EXPECT_EQ(agg.submitted, traffic.size());
  EXPECT_EQ(agg.completed, traffic.size());
  EXPECT_EQ(agg.retrieved, traffic.size());
  EXPECT_EQ(agg.rejected, 0u);
  EXPECT_EQ(agg.shed_routine + agg.shed_urgent, 0u);
  EXPECT_EQ(agg.unsolved, 0u);
  EXPECT_EQ(agg.ready, 0u);
  client.shutdown(/*send_bye=*/false);
}

TEST(RoutingClient, SloHistoryFollowsThePatientAcrossShards) {
  const auto traffic = fleet_traffic(/*patients=*/4, /*beats_per_patient=*/3);
  LocalShard a(1), b(1), c(1);
  RoutingClient client(client_config());
  ASSERT_TRUE(client.connect({a.endpoint(), b.endpoint()}));

  std::map<std::uint32_t, std::uint64_t> per_patient_submitted;
  for (const auto& window : traffic) {
    CompressedWindow copy = window;
    ASSERT_TRUE(client.submit(std::move(copy)).has_value());
    ++per_patient_submitted[window.patient_id];
  }
  (void)client.drain();

  // Two reshards: every patient's tracked history must survive wherever
  // consistent hashing lands them.
  ASSERT_TRUE(client.set_topology({b.endpoint(), c.endpoint(), a.endpoint()}));
  ASSERT_TRUE(client.set_topology({c.endpoint(), a.endpoint()}));

  for (const auto& [patient, submitted] : per_patient_submitted) {
    const auto state = client.patient_slo_state(patient);
    ASSERT_TRUE(state.has_value()) << "patient " << patient << " lost their tracker";
    EXPECT_EQ(state->submitted, submitted) << "patient " << patient;
    EXPECT_EQ(state->completed, submitted) << "patient " << patient;
    EXPECT_EQ(state->retrieved, submitted) << "patient " << patient;
  }
  client.shutdown(/*send_bye=*/false);
}

/// Pipelined submit path shared by the tests below: every window goes
/// through submit_pipelined, flush_submits() resolves the tickets, drain()
/// retrieves everything; returns the flush tickets in submission order.
std::vector<std::uint64_t> run_pipelined(RoutingClient& client,
                                         const std::vector<CompressedWindow>& traffic,
                                         std::map<WindowKey, WindowResult>& results) {
  for (const auto& window : traffic) {
    CompressedWindow copy = window;
    EXPECT_TRUE(client.submit_pipelined(std::move(copy)));
  }
  const auto tickets = client.flush_submits();
  EXPECT_EQ(tickets.size(), traffic.size());
  std::vector<std::uint64_t> resolved;
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    EXPECT_TRUE(tickets[i].has_value()) << "window " << i << " lost its ticket";
    if (tickets[i].has_value()) resolved.push_back(*tickets[i]);
  }
  for (auto&& r : client.drain()) {
    const WindowKey key{r.patient_id, r.window_index};
    EXPECT_TRUE(results.emplace(key, std::move(r)).second) << "duplicate result";
  }
  return resolved;
}

void expect_matches_reference(const std::map<WindowKey, WindowResult>& results,
                              const std::map<WindowKey, WindowResult>& reference) {
  ASSERT_EQ(results.size(), reference.size());
  for (const auto& [key, expected] : reference) {
    const auto found = results.find(key);
    ASSERT_NE(found, results.end());
    EXPECT_TRUE(bit_identical(found->second.signal, expected.signal))
        << "patient " << key.first << " window " << key.second
        << " diverged under pipelining";
    EXPECT_EQ(found->second.iterations, expected.iterations);
  }
}

TEST(RoutingClient, PipelinedSubmitsMatchSerialReferenceBitForBit) {
  const auto traffic = fleet_traffic(/*patients=*/6, /*beats_per_patient=*/3);
  const auto reference = serial_reference(traffic);

  LocalShard a(2), b(2);
  auto cfg = client_config();
  cfg.pipeline_depth = 2;
  cfg.submit_batch_windows = 4;
  RoutingClient client(cfg);
  ASSERT_TRUE(client.connect({a.endpoint(), b.endpoint()}));
  EXPECT_EQ(client.shard_wire_version(0), 2);
  EXPECT_EQ(client.shard_wire_version(1), 2);

  std::map<WindowKey, WindowResult> results;
  const auto tickets = run_pipelined(client, traffic, results);
  expect_matches_reference(results, reference);

  // The deferred tickets carry the same composite form a blocking submit
  // returns, stay unique, and every result echoes one of them.
  ASSERT_EQ(tickets.size(), traffic.size());
  std::set<std::uint64_t> unique(tickets.begin(), tickets.end());
  EXPECT_EQ(unique.size(), traffic.size()) << "tickets must be unique";
  for (std::size_t i = 0; i < traffic.size(); ++i) {
    EXPECT_EQ(host::ReconstructionFabric::ticket_epoch(tickets[i]), 0u);
    EXPECT_EQ(host::ReconstructionFabric::ticket_shard(tickets[i]),
              client.owner(traffic[i].patient_id))
        << "window " << i;
  }
  std::set<std::uint64_t> result_tickets;
  for (const auto& [key, result] : results) result_tickets.insert(result.ticket);
  EXPECT_EQ(result_tickets, unique);

  const auto agg = client.aggregate_snapshot();
  EXPECT_EQ(agg.submitted, traffic.size());
  EXPECT_EQ(agg.completed, traffic.size());
  EXPECT_EQ(agg.retrieved, traffic.size());
  EXPECT_EQ(agg.rejected, 0u);
  EXPECT_EQ(agg.shed_routine + agg.shed_urgent, 0u);
  client.shutdown(/*send_bye=*/false);
}

TEST(RoutingClient, PipelinedSubmitsFallBackPerWindowOnAV1Fleet) {
  // Shards capped at v1: submit_pipelined degrades to the blocking
  // per-window SUBMIT with identical tickets and results — the caller
  // never has to know which version the fleet negotiated.
  const auto traffic = fleet_traffic(/*patients=*/4, /*beats_per_patient=*/2);
  const auto reference = serial_reference(traffic);

  LocalShard a(1, /*max_version=*/1), b(1, /*max_version=*/1);
  auto cfg = client_config();
  cfg.pipeline_depth = 2;
  cfg.submit_batch_windows = 4;
  RoutingClient client(cfg);
  ASSERT_TRUE(client.connect({a.endpoint(), b.endpoint()}));
  EXPECT_EQ(client.shard_wire_version(0), 1);
  EXPECT_EQ(client.shard_wire_version(1), 1);

  std::map<WindowKey, WindowResult> results;
  const auto tickets = run_pipelined(client, traffic, results);
  expect_matches_reference(results, reference);
  EXPECT_EQ(std::set<std::uint64_t>(tickets.begin(), tickets.end()).size(), traffic.size());
  client.shutdown(/*send_bye=*/false);
}

TEST(RoutingClient, MixedVersionFleetNegotiatesPerShard) {
  // One v1-capped shard and one v2 shard in the same topology: the client
  // pipelines to the v2 shard, falls back per-window on the v1 shard, and
  // the merged result set stays bit-exact and conserved.
  const auto traffic = fleet_traffic(/*patients=*/6, /*beats_per_patient=*/2);
  const auto reference = serial_reference(traffic);

  LocalShard old_shard(1, /*max_version=*/1), new_shard(1);
  auto cfg = client_config();
  cfg.pipeline_depth = 2;
  cfg.submit_batch_windows = 4;
  RoutingClient client(cfg);
  ASSERT_TRUE(client.connect({old_shard.endpoint(), new_shard.endpoint()}));
  EXPECT_EQ(client.shard_wire_version(0), 1);
  EXPECT_EQ(client.shard_wire_version(1), 2);

  std::map<WindowKey, WindowResult> results;
  (void)run_pipelined(client, traffic, results);
  expect_matches_reference(results, reference);

  const auto agg = client.aggregate_snapshot();
  EXPECT_EQ(agg.submitted, traffic.size());
  EXPECT_EQ(agg.completed, traffic.size());
  EXPECT_EQ(agg.retrieved, traffic.size());
  client.shutdown(/*send_bye=*/false);
}

TEST(RoutingClient, ClientVersionCapForcesV1OnACapableServer) {
  // The staged-rollout knob: a v2-capable server negotiated down to v1 by
  // the client's own ceiling.  Everything still works, just per-window.
  const auto traffic = fleet_traffic(/*patients=*/2, /*beats_per_patient=*/2);
  const auto reference = serial_reference(traffic);

  LocalShard shard(1);
  auto cfg = client_config();
  cfg.max_wire_version = 1;
  cfg.pipeline_depth = 4;
  RoutingClient client(cfg);
  ASSERT_TRUE(client.connect({shard.endpoint()}));
  EXPECT_EQ(client.shard_wire_version(0), 1);

  std::map<WindowKey, WindowResult> results;
  (void)run_pipelined(client, traffic, results);
  expect_matches_reference(results, reference);
  client.shutdown(/*send_bye=*/false);
}

TEST(CrHints, AdvisoryFollowsOwnerShardAndReshardInvalidates) {
  LocalShard hinted(1, kWireVersionMax, /*hint_cr=*/70.0);
  LocalShard plain(1);
  RoutingClient client(client_config());
  ASSERT_TRUE(client.connect({hinted.endpoint()}));

  // No sweep yet: the client refuses to guess.
  EXPECT_FALSE(client.cr_hint(3).has_value());

  ASSERT_TRUE(client.refresh_cr_hints());
  const auto hint = client.cr_hint(3);
  ASSERT_TRUE(hint.has_value());
  EXPECT_DOUBLE_EQ(*hint, 70.0);

  // Reshard: a new routing epoch invalidates the cached sweep outright —
  // a stale hint routed to the wrong shard is worse than no hint.
  ASSERT_TRUE(client.set_topology({hinted.endpoint(), plain.endpoint()}));
  EXPECT_FALSE(client.cr_hint(3).has_value());

  // The next sweep is per-owner: patients on the hinted shard see the
  // advisory, patients on the quiet shard see nothing.
  ASSERT_TRUE(client.refresh_cr_hints());
  for (std::uint32_t patient = 0; patient < 16; ++patient) {
    const auto per_patient = client.cr_hint(patient);
    if (client.owner(patient) == 0) {
      ASSERT_TRUE(per_patient.has_value()) << "patient " << patient;
      EXPECT_DOUBLE_EQ(*per_patient, 70.0);
    } else {
      EXPECT_FALSE(per_patient.has_value()) << "patient " << patient;
    }
  }
  client.shutdown(/*send_bye=*/false);
}

TEST(CrHints, V1ShardsAreSkippedSilently) {
  // A v1 fleet predates the verb: the sweep must succeed as a no-op, not
  // poison the connection with a frame the server will refuse.
  const auto traffic = fleet_traffic(/*patients=*/2, /*beats_per_patient=*/1);
  LocalShard old_shard(1, /*max_version=*/1, /*hint_cr=*/70.0);
  RoutingClient client(client_config());
  ASSERT_TRUE(client.connect({old_shard.endpoint()}));
  EXPECT_EQ(client.shard_wire_version(0), 1);

  EXPECT_TRUE(client.refresh_cr_hints());
  EXPECT_FALSE(client.cr_hint(0).has_value());

  // The connection still works after the sweep.
  for (const auto& window : traffic) {
    CompressedWindow copy = window;
    ASSERT_TRUE(client.submit(std::move(copy)).has_value());
  }
  EXPECT_EQ(client.drain().size(), traffic.size());
  client.shutdown(/*send_bye=*/false);
}

TEST(CrHints, PressureGateOpensUnderBacklogAndClosesAfterDrain) {
  // The production configuration: advisory only while the priced backlog
  // overshoots the deadline budget.  A serial (threads = 0) server engine
  // holds submitted windows queued until POLL, so the test controls the
  // backlog exactly; the pinned 10 ms estimate against a 10 ms deadline
  // means three queued windows price at 30 ms — well past the budget.
  ShardServerConfig cfg;
  cfg.engine = fast_engine(0);
  cfg.engine.slo.deadline_ms = 10.0;
  cfg.engine.shed_solve_estimate_ms = 10.0;
  cfg.wire.fixed_scale = cs::measurement_scale_mv(sig::AdcConfig{});
  cfg.hint_cr_percent = 70.0;
  cfg.hint_backlog_deadlines = 1.0;
  LocalShard shard(std::move(cfg));
  RoutingClient client(client_config());
  ASSERT_TRUE(client.connect({shard.endpoint()}));

  // Idle shard: the sweep answers, but with no advisory.
  ASSERT_TRUE(client.refresh_cr_hints());
  EXPECT_FALSE(client.cr_hint(0).has_value());

  auto traffic = fleet_traffic(/*patients=*/1, /*beats_per_patient=*/2);
  ASSERT_GE(traffic.size(), 3u);
  traffic.resize(3);
  for (auto& window : traffic) {
    ASSERT_TRUE(client.submit(std::move(window)).has_value());
  }

  // Backlog priced past the budget: the gate opens, and the ack names the
  // patient with queued work as well as the shard-wide advisory.
  ASSERT_TRUE(client.refresh_cr_hints());
  const auto pressured = client.cr_hint(0);
  ASSERT_TRUE(pressured.has_value());
  EXPECT_DOUBLE_EQ(*pressured, 70.0);
  const auto advisory_only = client.cr_hint(999);  // No queued windows.
  ASSERT_TRUE(advisory_only.has_value()) << "shard-wide advisory covers every patient";
  EXPECT_DOUBLE_EQ(*advisory_only, 70.0);

  // Draining the backlog closes the gate again.
  EXPECT_EQ(client.drain().size(), 3u);
  ASSERT_TRUE(client.refresh_cr_hints());
  EXPECT_FALSE(client.cr_hint(0).has_value());
  client.shutdown(/*send_bye=*/false);
}

// --- Crash failover and connection-loss accounting ---------------------------

TEST(Backoff, ScheduleIsCappedJitteredAndDeterministic) {
  // Degenerate inputs never sleep.
  EXPECT_EQ(RoutingClient::backoff_delay_ms(0, 10, 2000, 1), 0);
  EXPECT_EQ(RoutingClient::backoff_delay_ms(-3, 10, 2000, 1), 0);
  EXPECT_EQ(RoutingClient::backoff_delay_ms(3, 0, 2000, 1), 0);

  const std::uint64_t seed = 0xABCD;
  for (int attempt = 1; attempt <= 40; ++attempt) {
    const int a = RoutingClient::backoff_delay_ms(attempt, 10, 2000, seed);
    // Deterministic: the same (seed, attempt) replays the same delay.
    EXPECT_EQ(a, RoutingClient::backoff_delay_ms(attempt, 10, 2000, seed));
    // Envelope: base·2^(k-1) clamped to the cap, plus at most +25% jitter.
    const std::int64_t nominal =
        std::min<std::int64_t>(2000, std::int64_t{10} << std::min(attempt - 1, 40));
    EXPECT_GE(a, nominal) << "attempt " << attempt;
    EXPECT_LE(a, nominal + nominal / 4) << "attempt " << attempt;
  }

  // The regression this schedule fixes: attempt counts whose uncapped
  // doubling overflowed int now saturate at the cap (+ jitter) instead.
  for (int attempt : {31, 32, 63, 64, 1000, std::numeric_limits<int>::max()}) {
    const int d = RoutingClient::backoff_delay_ms(attempt, 10, 2000, seed);
    EXPECT_GE(d, 2000) << "attempt " << attempt;
    EXPECT_LE(d, 2500) << "attempt " << attempt;
  }

  // The jitter actually varies with the seed (no thundering herd).
  bool differs = false;
  for (std::uint64_t s = 0; s < 32 && !differs; ++s) {
    differs = RoutingClient::backoff_delay_ms(8, 10, 2000, s) !=
              RoutingClient::backoff_delay_ms(8, 10, 2000, s + 1);
  }
  EXPECT_TRUE(differs);

  // A cap below the base degenerates to the base, never to zero.
  EXPECT_GE(RoutingClient::backoff_delay_ms(5, 100, 10, 7), 100);
  EXPECT_LE(RoutingClient::backoff_delay_ms(5, 100, 10, 7), 125);
}

TEST(Failover, MidStreamDisconnectResolvesTicketsOnceAndNeverDoubleSubmits) {
  // Scripted teardown at an exact frame boundary: frames 0-1 are the two
  // acknowledged SUBMIT_BATCHes of the first flush (a fully synced
  // boundary, so nothing is ambiguously on the wire), frame 2 is the next
  // batch — it dies before reaching the socket.  Its two windows must
  // resolve to nullopt exactly once (the no-resubmit rule), while the
  // four delivered windows are solved, retrieved, and never submitted
  // twice across the reconnect.
  auto traffic = fleet_traffic(/*patients=*/2, /*beats_per_patient=*/3);
  ASSERT_GE(traffic.size(), 8u);

  LocalShard shard(1);
  auto cfg = client_config();
  cfg.pipeline_depth = 2;
  cfg.submit_batch_windows = 2;
  cfg.payload_pool = std::make_shared<host::PayloadPool>();
  cfg.fault_inject = [](std::size_t, std::uint64_t frame) { return frame == 2; };
  RoutingClient client(cfg);
  ASSERT_TRUE(client.connect({shard.endpoint()}));

  // First flush: two batches, fully acknowledged.
  for (std::size_t i = 0; i < 4; ++i) {
    CompressedWindow copy = traffic[i];
    EXPECT_TRUE(client.submit_pipelined(std::move(copy)));
  }
  const auto acked = client.flush_submits();
  ASSERT_EQ(acked.size(), 4u);
  for (std::size_t i = 0; i < acked.size(); ++i) {
    EXPECT_TRUE(acked[i].has_value()) << "window " << i;
  }

  // Second round: the sealed batch dies at the scripted frame boundary.
  for (std::size_t i = 4; i < 6; ++i) {
    CompressedWindow copy = traffic[i];
    (void)client.submit_pipelined(std::move(copy));
  }
  const auto tickets = client.flush_submits();
  ASSERT_EQ(tickets.size(), 2u);
  EXPECT_FALSE(tickets[0].has_value()) << "died with the connection";
  EXPECT_FALSE(tickets[1].has_value()) << "died with the connection";
  // Exactly once: a second flush has nothing left to resolve.
  EXPECT_TRUE(client.flush_submits().empty());

  // The next verb reconnects; the four delivered windows surface, each
  // exactly once, and the shard's own counters prove no double-submit.
  const auto results = client.drain();
  EXPECT_EQ(results.size(), 4u);
  std::set<WindowKey> keys;
  for (const auto& r : results) {
    EXPECT_TRUE(keys.insert({r.patient_id, r.window_index}).second)
        << "duplicate result after reconnect";
  }
  auto agg = client.aggregate_snapshot();
  EXPECT_EQ(agg.submitted, 4u) << "a resubmit after reconnect would double-count";
  EXPECT_EQ(agg.completed, 4u);
  EXPECT_EQ(agg.retrieved, 4u);
  EXPECT_EQ(agg.lost, 0u) << "the shard never died; nothing is lost";

  // Post-reconnect submits work and keep counting from four.
  for (std::size_t i = 6; i < 8; ++i) {
    CompressedWindow copy = traffic[i];
    ASSERT_TRUE(client.submit(std::move(copy)).has_value());
  }
  EXPECT_EQ(client.drain().size(), 2u);
  agg = client.aggregate_snapshot();
  EXPECT_EQ(agg.submitted, 6u);

  // No payload leak: every window handed to the client returned its
  // buffers to the pool at stage time — including the six whose tickets
  // died — and nothing was dropped on the floor.
  const auto stats = cfg.payload_pool->stats();
  EXPECT_GE(stats.recycled, 8u);
  EXPECT_EQ(stats.dropped, 0u);
  client.shutdown(/*send_bye=*/false);
}

TEST(Failover, FailShardOpensFailoverEpochAndConservesWithLost) {
  const auto traffic = fleet_traffic(/*patients=*/6, /*beats_per_patient=*/3);
  const auto reference = serial_reference(traffic);

  LocalShard a(1), b(1);
  auto cfg = client_config();
  cfg.reconnect_attempts = 0;  // A dead port fails fast, not after backoff.
  cfg.health_probe_timeout_ms = 500;
  RoutingClient client(cfg);
  ASSERT_TRUE(client.connect({a.endpoint(), b.endpoint()}));

  // Phase 1: a full round trip — everything submitted, solved, retrieved.
  std::map<WindowKey, WindowResult> results;
  for (const auto& window : traffic) {
    CompressedWindow copy = window;
    ASSERT_TRUE(client.submit(std::move(copy)).has_value());
  }
  for (auto&& r : client.drain()) {
    results.emplace(WindowKey{r.patient_id, r.window_index}, std::move(r));
  }
  ASSERT_EQ(results.size(), traffic.size());

  // Phase 2: resubmit the same signals but crash shard 0 before polling:
  // its acknowledged windows are unrecoverable.
  std::uint64_t acked_to_dead = 0;
  std::optional<std::uint32_t> dead_owned_patient;
  for (const auto& window : traffic) {
    CompressedWindow copy = window;
    ASSERT_TRUE(client.submit(std::move(copy)).has_value());
    if (client.owner(window.patient_id) == 0) {
      ++acked_to_dead;
      dead_owned_patient = window.patient_id;
    }
  }
  ASSERT_GT(acked_to_dead, 0u) << "test needs patients on the shard that dies";
  a.kill();

  // Liveness: the survivor answers its probe, the corpse does not.
  EXPECT_TRUE(client.probe_health(1));
  EXPECT_FALSE(client.probe_health(0));
  EXPECT_EQ(client.check_health(), std::vector<std::size_t>{0});
  EXPECT_FALSE(client.shard_failed(0)) << "without auto_failover, detection only";

  // Manual failover: epoch flips, survivors keep their indices, every
  // patient re-homes onto shard 1, and the slot can't fail twice.
  ASSERT_TRUE(client.fail_shard(0));
  EXPECT_EQ(client.epoch(), 1u);
  EXPECT_EQ(client.shard_count(), 2u);
  EXPECT_EQ(client.live_shard_count(), 1u);
  EXPECT_TRUE(client.shard_failed(0));
  EXPECT_FALSE(client.fail_shard(0)) << "already failed";
  EXPECT_FALSE(client.fail_shard(1)) << "the last survivor has nowhere to re-home";
  for (const auto& window : traffic) {
    EXPECT_EQ(client.owner(window.patient_id), 1u);
  }

  // The survivor's phase-2 results still arrive, bit-identical.
  std::size_t survivor_results = 0;
  for (auto&& r : client.drain()) {
    const auto ref = reference.find({r.patient_id, r.window_index});
    ASSERT_NE(ref, reference.end());
    EXPECT_TRUE(bit_identical(r.signal, ref->second.signal))
        << "patient " << r.patient_id << " window " << r.window_index
        << " diverged across the failover";
    ++survivor_results;
  }
  EXPECT_EQ(survivor_results, traffic.size() - acked_to_dead);

  // Crash-proof conservation: the client's own mirrors stand in for the
  // snapshot the dead shard can never surrender.
  const auto agg = client.aggregate_snapshot();
  EXPECT_EQ(agg.lost, acked_to_dead);
  EXPECT_EQ(agg.submitted, 2 * traffic.size());
  EXPECT_EQ(agg.submitted, agg.completed + agg.shed_routine + agg.shed_urgent +
                               agg.rejected + agg.lost)
      << "submitted == completed + shed + rejected + lost must survive a crash";

  // Post-failover service: a window the dead shard would have owned now
  // submits to the survivor under the failover epoch, and the result
  // still matches the serial reference bit for bit.
  ASSERT_TRUE(dead_owned_patient.has_value());
  std::optional<CompressedWindow> rehomed;
  for (const auto& window : traffic) {
    if (window.patient_id == *dead_owned_patient) {
      rehomed = window;
      break;
    }
  }
  ASSERT_TRUE(rehomed.has_value());
  const WindowKey rehomed_key{rehomed->patient_id, rehomed->window_index};
  const auto ticket = client.submit(std::move(*rehomed));
  ASSERT_TRUE(ticket.has_value());
  EXPECT_EQ(host::ReconstructionFabric::ticket_epoch(*ticket), 1u);
  EXPECT_EQ(host::ReconstructionFabric::ticket_shard(*ticket), 1u);
  auto post = client.drain();
  ASSERT_EQ(post.size(), 1u);
  EXPECT_TRUE(bit_identical(post.front().signal, reference.at(rehomed_key).signal));
  client.shutdown(/*send_bye=*/false);
}

TEST(Failover, AutoFailoverReroutesAndKeepsServing) {
  // The full automatic path: a shard dies mid-deployment, the next submit
  // touching it detects the death, fails it over, and lands the in-hand
  // window on the survivor — no manual intervention, counts conserved.
  const auto traffic = fleet_traffic(/*patients=*/6, /*beats_per_patient=*/2);
  const auto reference = serial_reference(traffic);

  LocalShard a(1), b(1);
  auto cfg = client_config();
  cfg.auto_failover = true;
  cfg.reconnect_attempts = 0;
  cfg.health_probe_timeout_ms = 500;
  RoutingClient client(cfg);
  ASSERT_TRUE(client.connect({a.endpoint(), b.endpoint()}));

  // Load both shards, retrieve nothing, then crash shard 0: everything it
  // acknowledged is lost.
  std::uint64_t acked_to_dead = 0;
  for (const auto& window : traffic) {
    CompressedWindow copy = window;
    ASSERT_TRUE(client.submit(std::move(copy)).has_value());
    if (client.owner(window.patient_id) == 0) ++acked_to_dead;
  }
  ASSERT_GT(acked_to_dead, 0u);
  a.kill();

  // Every submit keeps succeeding: the first one to touch the corpse
  // pays for the detection, fails the shard over, and re-routes.
  for (const auto& window : traffic) {
    CompressedWindow copy = window;
    const auto ticket = client.submit(std::move(copy));
    ASSERT_TRUE(ticket.has_value()) << "auto-failover must keep the fleet serving";
    EXPECT_EQ(host::ReconstructionFabric::ticket_shard(*ticket), 1u)
        << "post-failover submits land on the survivor";
  }
  EXPECT_TRUE(client.shard_failed(0));
  EXPECT_EQ(client.epoch(), 1u);
  EXPECT_EQ(client.live_shard_count(), 1u);

  // The survivor serves the re-submitted round bit-identically.
  std::size_t matched = 0;
  for (auto&& r : client.drain()) {
    const auto ref = reference.find({r.patient_id, r.window_index});
    ASSERT_NE(ref, reference.end());
    EXPECT_TRUE(bit_identical(r.signal, ref->second.signal));
    ++matched;
  }
  // Round 1's survivor-shard windows + all of round 2.
  EXPECT_EQ(matched, (traffic.size() - acked_to_dead) + traffic.size());

  const auto agg = client.aggregate_snapshot();
  EXPECT_EQ(agg.lost, acked_to_dead);
  EXPECT_EQ(agg.submitted, 2 * traffic.size());
  EXPECT_EQ(agg.submitted, agg.completed + agg.shed_routine + agg.shed_urgent +
                               agg.rejected + agg.lost);
  client.shutdown(/*send_bye=*/false);
}

TEST(Failover, CheckHealthAutoFailsDeadShardsAndV1ProbesFallBack) {
  // Mixed fleet: the v1 shard is probed via SNAPSHOT_REQUEST (HEALTH does
  // not exist there), the v2 shard via HEALTH.  Killing the v2 shard and
  // sweeping with auto_failover fails exactly it.
  LocalShard old_shard(1, /*max_version=*/1), new_shard(1);
  auto cfg = client_config();
  cfg.auto_failover = true;
  cfg.reconnect_attempts = 0;
  cfg.health_probe_timeout_ms = 500;
  RoutingClient client(cfg);
  ASSERT_TRUE(client.connect({old_shard.endpoint(), new_shard.endpoint()}));
  ASSERT_EQ(client.shard_wire_version(0), 1);
  ASSERT_EQ(client.shard_wire_version(1), 2);

  // Both alive: both probe healthy, whatever verb carries the probe.
  EXPECT_TRUE(client.probe_health(0));
  EXPECT_TRUE(client.probe_health(1));
  EXPECT_TRUE(client.check_health().empty());

  new_shard.kill();
  const auto dead = client.check_health();
  ASSERT_EQ(dead, std::vector<std::size_t>{1});
  EXPECT_TRUE(client.shard_failed(1));
  EXPECT_FALSE(client.shard_failed(0));
  EXPECT_EQ(client.epoch(), 1u);

  // A failed slot probes false forever — never resurrected in place.
  EXPECT_FALSE(client.probe_health(1));
  client.shutdown(/*send_bye=*/false);
}

TEST(Protocol, HealthEchoesNonceAndV1ConnectionsRefuseIt) {
  LocalShard shard(0);
  const auto read_one = [](Fd& fd, std::vector<std::uint8_t>& rx,
                           std::vector<std::uint8_t>& acc, FrameView& view) {
    acc.clear();
    for (;;) {
      const long n = recv_some(fd.get(), rx.data(), rx.size());
      ASSERT_GT(n, 0) << "server closed the connection";
      acc.insert(acc.end(), rx.begin(), rx.begin() + n);
      if (peek_frame(acc, view) == FrameStatus::kOk) break;
    }
  };

  {
    // v2 connection: HEALTH answers HEALTH_ACK with the nonce echoed and
    // the engine's live queue depths (an idle shard reports 0/0).
    Fd fd = tcp_connect("127.0.0.1", shard.server->port(), 2000, 2000);
    ASSERT_TRUE(fd.valid());
    std::vector<std::uint8_t> buf, rx(4096), acc;
    FrameView view;
    encode_hello(buf, HelloPayload{1, 2});
    ASSERT_TRUE(send_all(fd.get(), buf.data(), buf.size()));
    read_one(fd, rx, acc, view);
    ASSERT_EQ(view.type, FrameType::kHelloAck);

    buf.clear();
    encode_health(buf, /*nonce=*/0xFACE5EED);
    ASSERT_TRUE(send_all(fd.get(), buf.data(), buf.size()));
    read_one(fd, rx, acc, view);
    ASSERT_EQ(view.type, FrameType::kHealthAck);
    HealthAckPayload ack;
    ASSERT_TRUE(decode_health_ack(view.payload, ack));
    EXPECT_EQ(ack.nonce, 0xFACE5EEDu);
    EXPECT_EQ(ack.unsolved, 0u);
    EXPECT_EQ(ack.ready, 0u);
  }
  {
    // v1-negotiated connection: HEALTH is a v2 frame above the ceiling.
    Fd fd = tcp_connect("127.0.0.1", shard.server->port(), 2000, 2000);
    ASSERT_TRUE(fd.valid());
    std::vector<std::uint8_t> buf, rx(4096), acc;
    FrameView view;
    encode_hello(buf, HelloPayload{1, 1});
    ASSERT_TRUE(send_all(fd.get(), buf.data(), buf.size()));
    read_one(fd, rx, acc, view);
    ASSERT_EQ(view.type, FrameType::kHelloAck);

    buf.clear();
    encode_health(buf, 1);
    ASSERT_TRUE(send_all(fd.get(), buf.data(), buf.size()));
    read_one(fd, rx, acc, view);
    ASSERT_EQ(view.type, FrameType::kError);
    ErrorPayload error;
    ASSERT_TRUE(decode_error(view.payload, error));
    EXPECT_EQ(error.code, ErrorCode::kUnsupportedVersion);
  }
}

TEST(Protocol, TalkingBeforeHelloIsRefused) {
  LocalShard shard(0);
  Fd fd = tcp_connect("127.0.0.1", shard.server->port(), 2000, 2000);
  ASSERT_TRUE(fd.valid());
  std::vector<std::uint8_t> buf;
  encode_poll(buf, 1);  // POLL before HELLO.
  ASSERT_TRUE(send_all(fd.get(), buf.data(), buf.size()));

  std::vector<std::uint8_t> rx(4096);
  std::vector<std::uint8_t> acc;
  FrameView view;
  for (;;) {
    const long n = recv_some(fd.get(), rx.data(), rx.size());
    ASSERT_GT(n, 0) << "server closed without an ERROR frame";
    acc.insert(acc.end(), rx.begin(), rx.begin() + n);
    const auto status = peek_frame(acc, view);
    if (status == FrameStatus::kOk) break;
    ASSERT_EQ(status, FrameStatus::kNeedMore);
  }
  ASSERT_EQ(view.type, FrameType::kError);
  ErrorPayload error;
  ASSERT_TRUE(decode_error(view.payload, error));
  EXPECT_EQ(error.code, ErrorCode::kNotNegotiated);
}

TEST(Protocol, UnknownVersionGetsErrorNotGuesswork) {
  LocalShard shard(0);
  Fd fd = tcp_connect("127.0.0.1", shard.server->port(), 2000, 2000);
  ASSERT_TRUE(fd.valid());

  // A well-formed frame stamped with a future version (CRC valid).
  std::vector<std::uint8_t> buf;
  encode_poll(buf, 1);
  buf[2] = 7;
  const std::uint32_t crc = crc32c(buf.data(), buf.size() - kFrameTrailerBytes);
  buf[buf.size() - 4] = static_cast<std::uint8_t>(crc);
  buf[buf.size() - 3] = static_cast<std::uint8_t>(crc >> 8);
  buf[buf.size() - 2] = static_cast<std::uint8_t>(crc >> 16);
  buf[buf.size() - 1] = static_cast<std::uint8_t>(crc >> 24);
  ASSERT_TRUE(send_all(fd.get(), buf.data(), buf.size()));

  std::vector<std::uint8_t> rx(4096);
  std::vector<std::uint8_t> acc;
  FrameView view;
  for (;;) {
    const long n = recv_some(fd.get(), rx.data(), rx.size());
    ASSERT_GT(n, 0) << "server closed without an ERROR frame";
    acc.insert(acc.end(), rx.begin(), rx.begin() + n);
    const auto status = peek_frame(acc, view);
    if (status == FrameStatus::kOk) break;
    ASSERT_EQ(status, FrameStatus::kNeedMore);
  }
  ASSERT_EQ(view.type, FrameType::kError);
  ErrorPayload error;
  ASSERT_TRUE(decode_error(view.payload, error));
  EXPECT_EQ(error.code, ErrorCode::kUnsupportedVersion);
}

TEST(Protocol, VersionNegotiationPicksMutualVersion) {
  LocalShard shard(0);
  Fd fd = tcp_connect("127.0.0.1", shard.server->port(), 2000, 2000);
  ASSERT_TRUE(fd.valid());
  // Offer a range spanning far beyond what this build speaks: the server
  // picks the highest version both sides share, which today is v2.
  std::vector<std::uint8_t> buf;
  encode_hello(buf, HelloPayload{1, 200});
  ASSERT_TRUE(send_all(fd.get(), buf.data(), buf.size()));

  std::vector<std::uint8_t> rx(4096);
  std::vector<std::uint8_t> acc;
  FrameView view;
  for (;;) {
    const long n = recv_some(fd.get(), rx.data(), rx.size());
    ASSERT_GT(n, 0);
    acc.insert(acc.end(), rx.begin(), rx.begin() + n);
    if (peek_frame(acc, view) == FrameStatus::kOk) break;
  }
  ASSERT_EQ(view.type, FrameType::kHelloAck);
  std::uint8_t version = 0;
  ASSERT_TRUE(decode_hello_ack(view.payload, version));
  EXPECT_EQ(version, kWireVersionMax);

  // An offer entirely above our ceiling is refused.
  Fd fd2 = tcp_connect("127.0.0.1", shard.server->port(), 2000, 2000);
  ASSERT_TRUE(fd2.valid());
  buf.clear();
  encode_hello(buf, HelloPayload{5, 9});
  ASSERT_TRUE(send_all(fd2.get(), buf.data(), buf.size()));
  acc.clear();
  for (;;) {
    const long n = recv_some(fd2.get(), rx.data(), rx.size());
    ASSERT_GT(n, 0);
    acc.insert(acc.end(), rx.begin(), rx.begin() + n);
    if (peek_frame(acc, view) == FrameStatus::kOk) break;
  }
  ASSERT_EQ(view.type, FrameType::kError);
  ErrorPayload error;
  ASSERT_TRUE(decode_error(view.payload, error));
  EXPECT_EQ(error.code, ErrorCode::kUnsupportedVersion);
}

TEST(Protocol, V2FrameAboveTheNegotiatedVersionIsRefused) {
  // Negotiate v1 explicitly, then send a SUBMIT_BATCH (a v2-layout frame,
  // header version 2).  The server must answer ERROR(UNSUPPORTED_VERSION)
  // — the negotiated ceiling governs frame types, not just the handshake.
  LocalShard shard(0);
  Fd fd = tcp_connect("127.0.0.1", shard.server->port(), 2000, 2000);
  ASSERT_TRUE(fd.valid());

  std::vector<std::uint8_t> buf;
  encode_hello(buf, HelloPayload{1, 1});
  ASSERT_TRUE(send_all(fd.get(), buf.data(), buf.size()));

  std::vector<std::uint8_t> rx(4096);
  std::vector<std::uint8_t> acc;
  FrameView view;
  const auto read_one = [&]() {
    acc.clear();
    for (;;) {
      const long n = recv_some(fd.get(), rx.data(), rx.size());
      ASSERT_GT(n, 0) << "server closed the connection";
      acc.insert(acc.end(), rx.begin(), rx.begin() + n);
      if (peek_frame(acc, view) == FrameStatus::kOk) break;
    }
  };
  read_one();
  ASSERT_EQ(view.type, FrameType::kHelloAck);
  std::uint8_t version = 0;
  ASSERT_TRUE(decode_hello_ack(view.payload, version));
  ASSERT_EQ(version, 1);

  buf.clear();
  std::vector<CompressedWindow> one;
  one.push_back(fleet_traffic(/*patients=*/1, /*beats_per_patient=*/1).front());
  encode_submit_batch(buf, one, kSubmitFlagBlocking, WireEncodeOptions{});
  ASSERT_TRUE(send_all(fd.get(), buf.data(), buf.size()));
  read_one();
  ASSERT_EQ(view.type, FrameType::kError);
  ErrorPayload error;
  ASSERT_TRUE(decode_error(view.payload, error));
  EXPECT_EQ(error.code, ErrorCode::kUnsupportedVersion);
}

}  // namespace
}  // namespace wbsn::net
