// The PR 10 acceptance test: crash recovery must survive a real kill -9.
// Each shard is a fork/exec'd shard_serverd daemon; one of them is
// SIGKILLed mid-stream with a solving backlog it will never surrender.
// The coordinator detects the corpse, opens a failover epoch, re-homes
// the dead shard's patients onto the survivors, and keeps serving — with
// every destroyed window accounted under the explicit `lost` counter, so
// conservation becomes
//
//   submitted == completed + shed + rejected + lost
//
// and every signal the fleet *does* return stays bit-identical to the
// serial in-process reference.  A second test covers the satellite fix:
// SIGTERM must shut a daemon down cleanly through the async-signal-safe
// self-pipe path (exit 0, never a crash or a hang).

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "cs/pipeline.hpp"
#include "host/reconstruction_fabric.hpp"
#include "net/routing_client.hpp"
#include "sig/ecg_synth.hpp"
#include "sig/rng.hpp"

namespace wbsn::net {
namespace {

using host::CompressedWindow;
using host::EngineConfig;
using host::ReconstructionEngine;
using host::WindowResult;
using WindowKey = std::pair<std::uint32_t, std::uint32_t>;

bool bit_identical(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

std::vector<CompressedWindow> fleet_traffic(int patients, int beats_per_patient) {
  std::vector<CompressedWindow> traffic;
  for (int p = 0; p < patients; ++p) {
    sig::SynthConfig synth;
    synth.num_leads = 1;
    synth.episodes = {{sig::RhythmEpisode::Kind::kSinus, beats_per_patient}};
    sig::Rng rng(0x4E7A11ULL + static_cast<std::uint64_t>(p));
    const auto record = synthesize_ecg(synth, rng);

    host::RecordCompressionConfig compression;
    compression.window_samples = 128;
    compression.cr_percent = 50.0;
    auto windows = host::compress_record(record, static_cast<std::uint32_t>(p), compression);
    traffic.insert(traffic.end(), std::make_move_iterator(windows.begin()),
                   std::make_move_iterator(windows.end()));
  }
  return traffic;
}

std::map<WindowKey, WindowResult> serial_reference(
    const std::vector<CompressedWindow>& traffic) {
  // Default engine config, like the daemons (the CLI exposes capacity and
  // deadline knobs, not solver internals).
  EngineConfig cfg;
  cfg.threads = 0;
  std::map<WindowKey, WindowResult> reference;
  ReconstructionEngine serial(cfg);
  for (const auto& window : traffic) {
    CompressedWindow copy = window;
    serial.submit(std::move(copy));
  }
  for (auto& result : serial.drain()) {
    reference.emplace(WindowKey{result.patient_id, result.window_index}, std::move(result));
  }
  return reference;
}

/// One shard_serverd child process (see multiprocess_reshard_test.cpp for
/// the orderly-lifecycle twin).  This harness adds kill9(): the real
/// SIGKILL — no handler runs, no state is flushed, the backlog dies.
class ShardDaemon {
 public:
  ShardDaemon() { spawn(); }

 private:
  void spawn() {
    int out[2] = {-1, -1};
    EXPECT_EQ(::pipe(out), 0);
    pid_ = ::fork();
    ASSERT_NE(pid_, -1);
    if (pid_ == 0) {
      ::dup2(out[1], STDOUT_FILENO);
      ::close(out[0]);
      ::close(out[1]);
      const std::string scale = std::to_string(cs::measurement_scale_mv(sig::AdcConfig{}));
      ::execl(WBSN_SHARD_SERVERD_PATH, "shard_serverd", "--threads", "1",
              "--fixed-scale", scale.c_str(), static_cast<char*>(nullptr));
      std::perror("execl shard_serverd");
      ::_exit(127);
    }
    ::close(out[1]);

    std::string line;
    char ch = 0;
    while (::read(out[0], &ch, 1) == 1 && ch != '\n') line.push_back(ch);
    ::close(out[0]);
    unsigned port = 0;
    ASSERT_EQ(std::sscanf(line.c_str(), "PORT %u", &port), 1)
        << "daemon readiness line was: '" << line << "'";
    port_ = static_cast<std::uint16_t>(port);
  }

 public:
  ~ShardDaemon() {
    if (pid_ > 0) {
      ::kill(pid_, SIGTERM);
      int status = 0;
      ::waitpid(pid_, &status, 0);
    }
  }

  /// SIGKILL — the crash under test.  The kernel reaps the process before
  /// any user code runs: no BYE, no flush, the engine's backlog is gone.
  void kill9() {
    ASSERT_GT(pid_, 0);
    ASSERT_EQ(::kill(pid_, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid_, &status, 0), pid_);
    EXPECT_TRUE(WIFSIGNALED(status)) << "expected a signal death, got exit "
                                     << (WIFEXITED(status) ? WEXITSTATUS(status) : -1);
    if (WIFSIGNALED(status)) {
      EXPECT_EQ(WTERMSIG(status), SIGKILL);
    }
    pid_ = -1;
  }

  /// Sends `sig` and waits for a *clean* exit — the async-signal-safe
  /// shutdown path (self-pipe wake, stop on the loop thread, exit 0).
  void signal_and_expect_clean_exit(int sig) {
    ASSERT_GT(pid_, 0);
    ASSERT_EQ(::kill(pid_, sig), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid_, &status, 0), pid_);
    EXPECT_TRUE(WIFEXITED(status)) << "daemon killed by signal " << WTERMSIG(status);
    if (WIFEXITED(status)) {
      EXPECT_EQ(WEXITSTATUS(status), 0);
    }
    pid_ = -1;
  }

  /// Waits for the daemon to exit on its own (after BYE); asserts clean.
  void reap() {
    ASSERT_GT(pid_, 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid_, &status, 0), pid_);
    EXPECT_TRUE(WIFEXITED(status)) << "daemon killed by signal " << WTERMSIG(status);
    if (WIFEXITED(status)) {
      EXPECT_EQ(WEXITSTATUS(status), 0);
    }
    pid_ = -1;
  }

  ShardEndpoint endpoint() const { return {"127.0.0.1", port_}; }

 private:
  pid_t pid_ = -1;
  std::uint16_t port_ = 0;
};

TEST(MultiProcessFailover, Kill9MidStreamRecoversWithConservationAndBitIdenticalSurvivors) {
  const auto traffic = fleet_traffic(/*patients=*/6, /*beats_per_patient=*/3);
  const auto reference = serial_reference(traffic);

  ShardDaemon d0, d1, d2;
  RoutingClientConfig client_cfg;
  client_cfg.wire.fixed_scale = cs::measurement_scale_mv(sig::AdcConfig{});
  client_cfg.auto_failover = true;
  client_cfg.reconnect_attempts = 0;  // A dead port refuses fast; don't back off.
  client_cfg.health_probe_timeout_ms = 1000;
  RoutingClient client(client_cfg);
  ASSERT_TRUE(client.connect({d0.endpoint(), d1.endpoint(), d2.endpoint()}));

  std::map<WindowKey, WindowResult> results;
  std::set<std::uint64_t> tickets;
  const auto keep = [&](WindowResult&& r) {
    const WindowKey key{r.patient_id, r.window_index};
    EXPECT_TRUE(tickets.insert(r.ticket).second) << "duplicate ticket";
    EXPECT_TRUE(results.emplace(key, std::move(r)).second) << "duplicate result";
  };

  // Phase 1: a fully drained round through all three daemons — these
  // windows are safe whatever happens next.
  const std::size_t half = traffic.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    CompressedWindow copy = traffic[i];
    ASSERT_TRUE(client.submit(std::move(copy)).has_value());
  }
  for (auto&& r : client.drain()) keep(std::move(r));
  ASSERT_EQ(results.size(), half);

  // Phase 2: load the fleet and kill d1 while its backlog is in flight.
  // Every phase-2 window acknowledged by d1 is destroyed with it; the
  // epoch-0 ring tells us exactly which ones those are.
  std::uint64_t lost_expected = 0;
  std::set<WindowKey> lost_keys;
  for (std::size_t i = half; i < traffic.size(); ++i) {
    CompressedWindow copy = traffic[i];
    ASSERT_TRUE(client.submit(std::move(copy)).has_value());
    if (client.owner(copy.patient_id) == 1) {
      ++lost_expected;
      lost_keys.insert({traffic[i].patient_id, traffic[i].window_index});
    }
  }
  ASSERT_GT(lost_expected, 0u) << "the test needs patients on the daemon that dies";
  d1.kill9();

  // Detection: the health sweep finds the corpse and (auto_failover) opens
  // the failover epoch on the spot.  Survivors keep their indices.
  const auto dead = client.check_health();
  ASSERT_EQ(dead, std::vector<std::size_t>{1});
  EXPECT_TRUE(client.shard_failed(1));
  EXPECT_EQ(client.epoch(), 1u);
  EXPECT_EQ(client.shard_count(), 3u);
  EXPECT_EQ(client.live_shard_count(), 2u);
  for (const auto& window : traffic) {
    EXPECT_NE(client.owner(window.patient_id), 1u) << "a corpse must own no patients";
  }

  // The fleet keeps serving: re-home the lost windows' patients by
  // resubmitting their windows — the ring now routes them to survivors.
  for (std::size_t i = half; i < traffic.size(); ++i) {
    const WindowKey key{traffic[i].patient_id, traffic[i].window_index};
    if (lost_keys.count(key) == 0) continue;
    CompressedWindow copy = traffic[i];
    const auto ticket = client.submit(std::move(copy));
    ASSERT_TRUE(ticket.has_value()) << "post-failover submits must succeed";
    EXPECT_EQ(host::ReconstructionFabric::ticket_epoch(*ticket), 1u);
    EXPECT_NE(host::ReconstructionFabric::ticket_shard(*ticket), 1u);
  }
  for (auto&& r : client.drain()) keep(std::move(r));

  // Every window of every patient came back — the lost ones through their
  // post-failover resubmission — and each is bit-identical to the serial
  // reference: the crash cost availability, never correctness.
  ASSERT_EQ(results.size(), traffic.size());
  for (const auto& [key, expected] : reference) {
    const auto found = results.find(key);
    ASSERT_NE(found, results.end());
    EXPECT_TRUE(bit_identical(found->second.signal, expected.signal))
        << "patient " << key.first << " window " << key.second
        << " diverged across the kill -9";
    EXPECT_EQ(found->second.iterations, expected.iterations);
    EXPECT_EQ(found->second.snr_db, expected.snr_db);
  }

  // Crash-proof conservation: the client's mirrors account every window
  // the dead daemon acknowledged, split exactly into retrieved-in-time
  // (phase 1) and lost (phase 2).
  const auto agg = client.aggregate_snapshot();
  EXPECT_EQ(agg.lost, lost_expected);
  // phase 1 + phase 2 + the lost windows' resubmissions.
  EXPECT_EQ(agg.submitted, traffic.size() + lost_expected);
  EXPECT_EQ(agg.rejected, 0u);
  EXPECT_EQ(agg.shed_routine + agg.shed_urgent, 0u);
  EXPECT_EQ(agg.submitted, agg.completed + agg.shed_routine + agg.shed_urgent +
                               agg.rejected + agg.lost)
      << "submitted == completed + shed + rejected + lost must survive kill -9";
  EXPECT_EQ(agg.unsolved, 0u);
  EXPECT_EQ(agg.ready, 0u);

  // Orderly dismissal of the two survivors.
  client.shutdown(/*send_bye=*/true);
  d0.reap();
  d2.reap();
}

TEST(MultiProcessFailover, SigtermShutsDownCleanlyEvenUnderLoad) {
  // The satellite-2 regression test: SIGTERM lands while the daemon is
  // mid-stream with a solving backlog.  The handler may only set a flag
  // and write the self-pipe; the event loop notices and stops on its own
  // thread — the process must exit 0, never crash, hang, or deadlock.
  const auto traffic = fleet_traffic(/*patients=*/2, /*beats_per_patient=*/2);

  ShardDaemon daemon;
  RoutingClientConfig client_cfg;
  client_cfg.wire.fixed_scale = cs::measurement_scale_mv(sig::AdcConfig{});
  RoutingClient client(client_cfg);
  ASSERT_TRUE(client.connect({daemon.endpoint()}));
  for (const auto& window : traffic) {
    CompressedWindow copy = window;
    ASSERT_TRUE(client.submit(std::move(copy)).has_value());
  }

  daemon.signal_and_expect_clean_exit(SIGTERM);
  client.shutdown(/*send_bye=*/false);
}

}  // namespace
}  // namespace wbsn::net
