// wbsn-wire v1 codec tests: CRC vectors, varint properties, value-coding
// round trips (including the bit-exactness edge cases the fixed-point
// fallback exists for), whole-frame round trips for every payload,
// malformed-input rejection, and byte-for-byte replay of the committed
// golden frames under tests/net/golden/ (the normative fixtures of
// docs/WIRE_FORMAT.md — if an encoder change shifts a single byte, the
// golden test fails and the spec must be revised deliberately).
//
// Regenerating goldens after an intentional format change:
//   WBSN_REGEN_GOLDEN=1 ./net_wire_format_test
// then commit the rewritten .bin files together with the spec update.

#include "net/wire_format.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "net/crc32c.hpp"

namespace wbsn::net {
namespace {

std::vector<std::uint8_t> encode_one(const auto& encode_fn) {
  std::vector<std::uint8_t> buf;
  encode_fn(buf);
  return buf;
}

FrameView must_peek(const std::vector<std::uint8_t>& buf) {
  FrameView view;
  EXPECT_EQ(peek_frame(buf, view), FrameStatus::kOk);
  EXPECT_EQ(view.frame_bytes, buf.size());
  return view;
}

TEST(Crc32c, MatchesRfc3720Vector) {
  const char* s = "123456789";
  EXPECT_EQ(crc32c(s, 9), 0xE3069283u);
  EXPECT_EQ(crc32c("", 0), 0x00000000u);
}

TEST(Crc32c, StreamingMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= data.size(); ++split) {
    std::uint32_t state = kCrc32cInit;
    state = crc32c_update(state, data.data(), split);
    state = crc32c_update(state, data.data() + split, data.size() - split);
    EXPECT_EQ(crc32c_finish(state), crc32c(data.data(), data.size()));
  }
}

TEST(Varint, RoundTripsBoundaryValues) {
  const std::uint64_t values[] = {0,
                                  1,
                                  127,
                                  128,
                                  16383,
                                  16384,
                                  0xFFFFFFFFull,
                                  0x100000000ull,
                                  std::numeric_limits<std::uint64_t>::max()};
  for (std::uint64_t v : values) {
    std::vector<std::uint8_t> buf;
    put_varint(buf, v);
    WireReader r(buf);
    EXPECT_EQ(r.varint(), v);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.remaining(), 0u);
  }
}

TEST(Varint, RejectsOverlongEncoding) {
  // 11 continuation bytes can never terminate a u64.
  std::vector<std::uint8_t> buf(11, 0x80);
  WireReader r(buf);
  (void)r.varint();
  EXPECT_FALSE(r.ok());
}

TEST(ValueCoding, FixedPointGridShipsFixed16) {
  const double scale = 0.125;
  std::vector<double> values;
  for (int i = -100; i <= 100; ++i) values.push_back(i * scale);
  std::vector<std::uint8_t> buf;
  encode_values(buf, values, WireEncodeOptions{scale});
  EXPECT_EQ(static_cast<ValueCoding>(buf[0]), ValueCoding::kFixed16);
  // 2 bytes/sample + coding byte + scale + count varint.
  EXPECT_LT(buf.size(), values.size() * 3);
  WireReader r(buf);
  std::vector<double> decoded;
  ASSERT_TRUE(decode_values(r, decoded));
  ASSERT_EQ(decoded.size(), values.size());
  EXPECT_EQ(std::memcmp(decoded.data(), values.data(), values.size() * sizeof(double)), 0);
}

TEST(ValueCoding, WideGridFallsBackToFixed32ThenFloat64) {
  const double scale = 1.0;
  // Beyond i16 range but on the grid: fixed32.
  std::vector<double> wide{40000.0, -40000.0, 1e9};
  std::vector<std::uint8_t> buf;
  encode_values(buf, wide, WireEncodeOptions{scale});
  EXPECT_EQ(static_cast<ValueCoding>(buf[0]), ValueCoding::kFixed32);
  WireReader r32(buf);
  std::vector<double> decoded;
  ASSERT_TRUE(decode_values(r32, decoded));
  EXPECT_EQ(std::memcmp(decoded.data(), wide.data(), wide.size() * sizeof(double)), 0);

  // Off the grid entirely: float64, still bit-exact.
  std::vector<double> off{0.1, 2.7182818, -3.14159};
  buf.clear();
  encode_values(buf, off, WireEncodeOptions{scale});
  EXPECT_EQ(static_cast<ValueCoding>(buf[0]), ValueCoding::kFloat64);
  WireReader rf(buf);
  ASSERT_TRUE(decode_values(rf, decoded));
  EXPECT_EQ(std::memcmp(decoded.data(), off.data(), off.size() * sizeof(double)), 0);
}

TEST(ValueCoding, NonFiniteAndNegativeZeroNeverQuantize) {
  // −0.0 quantizes to +0.0 and NaN/inf don't quantize at all: all must
  // force the float64 fallback so decode is bitwise-identical.
  const std::vector<double> tricky{-0.0, std::numeric_limits<double>::quiet_NaN(),
                                   std::numeric_limits<double>::infinity(), 1.0};
  std::vector<std::uint8_t> buf;
  encode_values(buf, tricky, WireEncodeOptions{1.0});
  EXPECT_EQ(static_cast<ValueCoding>(buf[0]), ValueCoding::kFloat64);
  WireReader r(buf);
  std::vector<double> decoded;
  ASSERT_TRUE(decode_values(r, decoded));
  ASSERT_EQ(decoded.size(), tricky.size());
  EXPECT_EQ(std::memcmp(decoded.data(), tricky.data(), tricky.size() * sizeof(double)), 0);
  EXPECT_TRUE(std::signbit(decoded[0]));
  EXPECT_TRUE(std::isnan(decoded[1]));
}

host::CompressedWindow sample_window() {
  host::CompressedWindow w;
  w.patient_id = 42;
  w.window_index = 7;
  w.matrix_seed = 0xC0FFEE;
  w.window_samples = 8;
  w.ones_per_column = 4;
  w.priority = cs::WindowPriority::kUrgent;
  w.route_tag = 3;
  const double scale = 0.0048828125;  // 2.5 mV / 512: an ADC-like LSB.
  for (int i = 0; i < 6; ++i) w.measurements.push_back((i - 3) * scale);
  return w;
}

host::WindowResult sample_result() {
  host::WindowResult r;
  r.patient_id = 42;
  r.window_index = 7;
  r.priority = cs::WindowPriority::kUrgent;
  r.route_tag = 3;
  r.ticket = 12345;
  r.signal = {0.25, -0.5, 0.333333333333, 1e-9, -0.0, 2.5};
  r.snr_db = 21.7;
  r.iterations = 83;
  r.latency_ms = 1.25;
  r.e2e_ms = 4.5;
  return r;
}

TEST(Frames, SubmitWindowRoundTripsBitExactly) {
  const auto w = sample_window();
  WireEncodeOptions opts{0.0048828125};
  const auto buf =
      encode_one([&](auto& b) { encode_submit_window(b, w, kSubmitFlagBlocking, opts); });
  const auto view = must_peek(buf);
  EXPECT_EQ(view.type, FrameType::kSubmitWindow);
  host::CompressedWindow d;
  std::uint8_t flags = 0;
  ASSERT_TRUE(decode_submit_window(view.payload, d, flags, nullptr));
  EXPECT_EQ(flags, kSubmitFlagBlocking);
  EXPECT_EQ(d.patient_id, w.patient_id);
  EXPECT_EQ(d.window_index, w.window_index);
  EXPECT_EQ(d.matrix_seed, w.matrix_seed);
  EXPECT_EQ(d.window_samples, w.window_samples);
  EXPECT_EQ(d.ones_per_column, w.ones_per_column);
  EXPECT_EQ(d.priority, w.priority);
  EXPECT_EQ(d.route_tag, w.route_tag);
  ASSERT_EQ(d.measurements.size(), w.measurements.size());
  EXPECT_EQ(std::memcmp(d.measurements.data(), w.measurements.data(),
                        w.measurements.size() * sizeof(double)),
            0);
  EXPECT_TRUE(d.reference.empty());
}

TEST(Frames, ResultRoundTripsBitExactly) {
  const auto res = sample_result();
  const auto buf = encode_one([&](auto& b) { encode_result(b, res, WireEncodeOptions{}); });
  const auto view = must_peek(buf);
  EXPECT_EQ(view.type, FrameType::kResult);
  host::WindowResult d;
  ASSERT_TRUE(decode_result(view.payload, d, nullptr));
  EXPECT_EQ(d.patient_id, res.patient_id);
  EXPECT_EQ(d.ticket, res.ticket);
  EXPECT_EQ(d.iterations, res.iterations);
  EXPECT_EQ(d.snr_db, res.snr_db);
  EXPECT_EQ(d.latency_ms, res.latency_ms);
  EXPECT_EQ(d.e2e_ms, res.e2e_ms);
  ASSERT_EQ(d.signal.size(), res.signal.size());
  EXPECT_EQ(
      std::memcmp(d.signal.data(), res.signal.data(), res.signal.size() * sizeof(double)), 0);
}

TEST(Frames, RandomizedWindowsRoundTripBitExactly) {
  std::mt19937_64 rng(0xD5EADu);
  std::uniform_real_distribution<double> uniform(-5.0, 5.0);
  for (int iter = 0; iter < 200; ++iter) {
    host::CompressedWindow w;
    w.patient_id = static_cast<std::uint32_t>(rng());
    w.window_index = static_cast<std::uint32_t>(rng());
    w.matrix_seed = rng();
    w.window_samples = static_cast<std::uint32_t>(rng() % 2048);
    w.ones_per_column = 1 + static_cast<std::uint32_t>(rng() % 8);
    w.priority = (rng() & 1) ? cs::WindowPriority::kUrgent : cs::WindowPriority::kRoutine;
    w.route_tag = static_cast<std::uint32_t>(rng() % 4096);
    const std::size_t m = rng() % 300;
    for (std::size_t i = 0; i < m; ++i) w.measurements.push_back(uniform(rng));
    if (rng() & 1) {
      for (std::size_t i = 0; i < 64; ++i) w.reference.push_back(uniform(rng));
    }
    // Half the iterations offer a fixed scale the data won't fit: the
    // encoder must fall back and stay bit-exact regardless.
    WireEncodeOptions opts{(rng() & 1) ? 0.001 : 0.0};
    std::vector<std::uint8_t> buf;
    encode_submit_window(buf, w, 0, opts);
    const auto view = must_peek(buf);
    host::CompressedWindow d;
    std::uint8_t flags = 0;
    ASSERT_TRUE(decode_submit_window(view.payload, d, flags, nullptr));
    ASSERT_EQ(d.measurements.size(), w.measurements.size());
    if (!w.measurements.empty()) {
      EXPECT_EQ(std::memcmp(d.measurements.data(), w.measurements.data(),
                            w.measurements.size() * sizeof(double)),
                0);
    }
    ASSERT_EQ(d.reference.size(), w.reference.size());
    if (!w.reference.empty()) {
      EXPECT_EQ(std::memcmp(d.reference.data(), w.reference.data(),
                            w.reference.size() * sizeof(double)),
                0);
    }
  }
}

TEST(Frames, MaxSizeVarintFieldsRoundTrip) {
  host::CompressedWindow w = sample_window();
  w.patient_id = std::numeric_limits<std::uint32_t>::max();
  w.window_index = std::numeric_limits<std::uint32_t>::max();
  w.matrix_seed = std::numeric_limits<std::uint64_t>::max();
  w.route_tag = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint8_t> buf;
  encode_submit_window(buf, w, 0xFF, WireEncodeOptions{});
  const auto view = must_peek(buf);
  host::CompressedWindow d;
  std::uint8_t flags = 0;
  ASSERT_TRUE(decode_submit_window(view.payload, d, flags, nullptr));
  EXPECT_EQ(d.patient_id, w.patient_id);
  EXPECT_EQ(d.matrix_seed, w.matrix_seed);
  EXPECT_EQ(flags, 0xFF);

  std::vector<std::uint8_t> ack;
  encode_submit_ack(ack, std::numeric_limits<std::uint64_t>::max());
  std::uint64_t ticket = 0;
  ASSERT_TRUE(decode_submit_ack(must_peek(ack).payload, ticket));
  EXPECT_EQ(ticket, std::numeric_limits<std::uint64_t>::max());
}

TEST(Frames, ControlFramesRoundTrip) {
  {
    const auto buf = encode_one([](auto& b) { encode_hello(b, HelloPayload{1, 9}); });
    HelloPayload h;
    ASSERT_TRUE(decode_hello(must_peek(buf).payload, h));
    EXPECT_EQ(h.min_version, 1);
    EXPECT_EQ(h.max_version, 9);
  }
  {
    const auto buf = encode_one([](auto& b) {
      encode_error(b, ErrorPayload{ErrorCode::kBadPayload, "oops"});
    });
    ErrorPayload e;
    ASSERT_TRUE(decode_error(must_peek(buf).payload, e));
    EXPECT_EQ(e.code, ErrorCode::kBadPayload);
    EXPECT_EQ(e.detail, "oops");
  }
  {
    const auto buf = encode_one(
        [](auto& b) { encode_patient_frame(b, FrameType::kDrainPatient, 777); });
    std::uint32_t patient = 0;
    ASSERT_TRUE(decode_patient_frame(must_peek(buf).payload, patient));
    EXPECT_EQ(patient, 777u);
  }
  {
    SnapshotPayload s;
    s.submitted = 100;
    s.completed = 90;
    s.retrieved = 80;
    s.shed_routine = 6;
    s.shed_urgent = 1;
    s.rejected = 3;
    s.deadline_violations = 2;
    s.unsolved = 4;
    s.ready = 10;
    const auto buf = encode_one([&](auto& b) { encode_snapshot(b, s); });
    SnapshotPayload d;
    ASSERT_TRUE(decode_snapshot(must_peek(buf).payload, d));
    EXPECT_EQ(d.submitted, 100u);
    EXPECT_EQ(d.ready, 10u);
  }
  {
    SloStatePayload slo;
    slo.patient_id = 9;
    slo.present = true;
    slo.state.submitted = 12;
    slo.state.completed = 11;
    slo.state.sum_us = 34567;
    slo.state.max_us = 9999;
    slo.state.elapsed_us = 1000000;
    slo.state.buckets = {{3, 4}, {17, 7}};
    const auto buf =
        encode_one([&](auto& b) { encode_slo_state(b, FrameType::kSloState, slo); });
    SloStatePayload d;
    ASSERT_TRUE(decode_slo_state(must_peek(buf).payload, d));
    EXPECT_EQ(d.patient_id, 9u);
    ASSERT_TRUE(d.present);
    EXPECT_EQ(d.state.submitted, 12u);
    ASSERT_EQ(d.state.buckets.size(), 2u);
    EXPECT_EQ(d.state.buckets[1].first, 17u);
    EXPECT_EQ(d.state.buckets[1].second, 7u);
  }
}

// --- v2 batched frames -------------------------------------------------------

std::vector<host::CompressedWindow> sample_batch() {
  std::vector<host::CompressedWindow> windows;
  for (std::uint32_t i = 0; i < 3; ++i) {
    host::CompressedWindow w = sample_window();
    w.window_index = 7 + i;
    w.priority = (i == 1) ? cs::WindowPriority::kRoutine : cs::WindowPriority::kUrgent;
    windows.push_back(std::move(w));
  }
  return windows;
}

TEST(FramesV2, SubmitBatchRoundTripsBitExactly) {
  const auto windows = sample_batch();
  const WireEncodeOptions opts{0.0048828125};
  const auto buf = encode_one(
      [&](auto& b) { encode_submit_batch(b, windows, kSubmitFlagBlocking, opts); });
  const auto view = must_peek(buf);
  EXPECT_EQ(view.type, FrameType::kSubmitBatch);
  EXPECT_EQ(view.version, 2) << "v2 frames declare the version that defined their layout";

  std::uint8_t flags = 0;
  std::vector<host::CompressedWindow> decoded;
  ASSERT_TRUE(decode_submit_batch(view.payload, flags, decoded, nullptr));
  EXPECT_EQ(flags, kSubmitFlagBlocking);
  ASSERT_EQ(decoded.size(), windows.size());
  for (std::size_t i = 0; i < windows.size(); ++i) {
    EXPECT_EQ(decoded[i].patient_id, windows[i].patient_id);
    EXPECT_EQ(decoded[i].window_index, windows[i].window_index);
    EXPECT_EQ(decoded[i].matrix_seed, windows[i].matrix_seed);
    EXPECT_EQ(decoded[i].priority, windows[i].priority);
    EXPECT_EQ(decoded[i].route_tag, windows[i].route_tag);
    ASSERT_EQ(decoded[i].measurements.size(), windows[i].measurements.size());
    EXPECT_EQ(std::memcmp(decoded[i].measurements.data(), windows[i].measurements.data(),
                          windows[i].measurements.size() * sizeof(double)),
              0)
        << "window " << i;
  }
}

TEST(FramesV2, ScatterGatherSealMatchesTheContiguousEncoder) {
  // The pipelined client never assembles a SUBMIT_BATCH contiguously: it
  // stages bodies, then seals prefix + bodies + CRC trailer as three
  // spans.  Concatenated, those spans must be byte-identical to the
  // whole-frame encoder — the goldens cover both paths at once.
  const auto windows = sample_batch();
  const WireEncodeOptions opts{0.0048828125};
  const auto whole = encode_one(
      [&](auto& b) { encode_submit_batch(b, windows, kSubmitFlagBlocking, opts); });

  std::vector<std::uint8_t> bodies;
  for (const auto& w : windows) encode_submit_batch_entry(bodies, w, opts);
  std::vector<std::uint8_t> prefix;
  encode_submit_batch_prefix(prefix, kSubmitFlagBlocking, windows.size(), bodies.size());
  std::vector<std::uint8_t> trailer;
  encode_submit_batch_trailer(trailer, prefix, bodies);

  std::vector<std::uint8_t> sealed = prefix;
  sealed.insert(sealed.end(), bodies.begin(), bodies.end());
  sealed.insert(sealed.end(), trailer.begin(), trailer.end());
  ASSERT_EQ(sealed.size(), whole.size());
  EXPECT_EQ(std::memcmp(sealed.data(), whole.data(), whole.size()), 0);
  FrameView view;
  EXPECT_EQ(peek_frame(sealed, view), FrameStatus::kOk) << "CRC must cover prefix and bodies";
}

TEST(FramesV2, SubmitBatchAckRoundTrips) {
  const std::vector<SubmitBatchAckEntry> entries{
      {true, 0},
      {false, 0},
      {true, std::numeric_limits<std::uint64_t>::max()},
  };
  const auto buf = encode_one([&](auto& b) { encode_submit_batch_ack(b, entries); });
  const auto view = must_peek(buf);
  EXPECT_EQ(view.type, FrameType::kSubmitBatchAck);
  EXPECT_EQ(view.version, 2);
  std::vector<SubmitBatchAckEntry> decoded;
  ASSERT_TRUE(decode_submit_batch_ack(view.payload, decoded));
  ASSERT_EQ(decoded.size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(decoded[i].accepted, entries[i].accepted) << "entry " << i;
    if (entries[i].accepted) {
      EXPECT_EQ(decoded[i].local_ticket, entries[i].local_ticket) << "entry " << i;
    }
  }
}

TEST(FramesV2, PollManyAndResultBatchRoundTrip) {
  {
    const auto buf = encode_one([](auto& b) { encode_poll_many(b, 48); });
    const auto view = must_peek(buf);
    EXPECT_EQ(view.type, FrameType::kPollMany);
    EXPECT_EQ(view.version, 2);
    std::uint32_t max_results = 0;
    ASSERT_TRUE(decode_poll_many(view.payload, max_results));
    EXPECT_EQ(max_results, 48u);
  }
  {
    // Two staged result bodies framed as one RESULT_BATCH.
    std::vector<std::uint8_t> bodies;
    auto first = sample_result();
    auto second = sample_result();
    second.window_index = 8;
    second.ticket = 12346;
    encode_result_entry(bodies, first, WireEncodeOptions{});
    encode_result_entry(bodies, second, WireEncodeOptions{});
    const auto buf = encode_one([&](auto& b) { encode_result_batch(b, bodies, 2); });
    const auto view = must_peek(buf);
    EXPECT_EQ(view.type, FrameType::kResultBatch);
    std::vector<host::WindowResult> decoded;
    ASSERT_TRUE(decode_result_batch(view.payload, decoded, nullptr));
    ASSERT_EQ(decoded.size(), 2u);
    EXPECT_EQ(decoded[0].ticket, first.ticket);
    EXPECT_EQ(decoded[1].window_index, 8u);
    ASSERT_EQ(decoded[0].signal.size(), first.signal.size());
    EXPECT_EQ(std::memcmp(decoded[0].signal.data(), first.signal.data(),
                          first.signal.size() * sizeof(double)),
              0);
  }
  {
    // An idle shard answers POLL_MANY with an empty batch, not POLL_END.
    const auto buf = encode_one([](auto& b) { encode_result_batch(b, {}, 0); });
    std::vector<host::WindowResult> decoded;
    ASSERT_TRUE(decode_result_batch(must_peek(buf).payload, decoded, nullptr));
    EXPECT_TRUE(decoded.empty());
  }
}

TEST(FramesV2, CrHintRoundTripsBitExactly) {
  const auto buf =
      encode_one([](auto& b) { encode_cr_hint(b, /*epoch=*/7, /*max_entries=*/64); });
  const auto view = must_peek(buf);
  EXPECT_EQ(view.type, FrameType::kCrHint);
  EXPECT_EQ(view.version, 2);  // v2-only verb: a v1 server refuses it.
  std::uint64_t epoch = 0;
  std::uint32_t max_entries = 0;
  ASSERT_TRUE(decode_cr_hint(view.payload, epoch, max_entries));
  EXPECT_EQ(epoch, 7u);
  EXPECT_EQ(max_entries, 64u);
}

TEST(FramesV2, CrHintAckRoundTripsBitExactly) {
  {
    // Pressure case: shard-wide advisory plus per-patient entries.
    CrHintAckPayload ack;
    ack.epoch = 3;
    ack.advisory_cr_centi = 7000;  // CR 70.00%.
    ack.entries = {{11, 7000}, {42, 7000}, {1000001, 6500}};
    const auto buf = encode_one([&](auto& b) { encode_cr_hint_ack(b, ack); });
    const auto view = must_peek(buf);
    EXPECT_EQ(view.type, FrameType::kCrHintAck);
    EXPECT_EQ(view.version, 2);
    CrHintAckPayload decoded;
    ASSERT_TRUE(decode_cr_hint_ack(view.payload, decoded));
    EXPECT_EQ(decoded.epoch, ack.epoch);
    EXPECT_EQ(decoded.advisory_cr_centi, ack.advisory_cr_centi);
    ASSERT_EQ(decoded.entries.size(), ack.entries.size());
    for (std::size_t i = 0; i < ack.entries.size(); ++i) {
      EXPECT_EQ(decoded.entries[i].patient_id, ack.entries[i].patient_id);
      EXPECT_EQ(decoded.entries[i].cr_centi, ack.entries[i].cr_centi);
    }
  }
  {
    // No-pressure case: advisory 0, no entries — the steady-state answer.
    CrHintAckPayload ack;
    ack.epoch = 0;
    const auto buf = encode_one([&](auto& b) { encode_cr_hint_ack(b, ack); });
    CrHintAckPayload decoded;
    ASSERT_TRUE(decode_cr_hint_ack(must_peek(buf).payload, decoded));
    EXPECT_EQ(decoded.advisory_cr_centi, 0u);
    EXPECT_TRUE(decoded.entries.empty());
  }
}

TEST(FramesV2, HealthRoundTripsBitExactly) {
  const auto buf =
      encode_one([](auto& b) { encode_health(b, /*nonce=*/0xFEEDFACE12ull); });
  const auto view = must_peek(buf);
  EXPECT_EQ(view.type, FrameType::kHealth);
  EXPECT_EQ(view.version, 2);  // v2-only verb: a v1 server refuses it.
  std::uint64_t nonce = 0;
  ASSERT_TRUE(decode_health(view.payload, nonce));
  EXPECT_EQ(nonce, 0xFEEDFACE12ull);
}

TEST(FramesV2, HealthAckRoundTripsBitExactly) {
  HealthAckPayload ack;
  ack.nonce = 0xFEEDFACE12ull;
  ack.unsolved = 17;
  ack.ready = 5;
  const auto buf = encode_one([&](auto& b) { encode_health_ack(b, ack); });
  const auto view = must_peek(buf);
  EXPECT_EQ(view.type, FrameType::kHealthAck);
  EXPECT_EQ(view.version, 2);
  HealthAckPayload decoded;
  ASSERT_TRUE(decode_health_ack(view.payload, decoded));
  EXPECT_EQ(decoded.nonce, ack.nonce);
  EXPECT_EQ(decoded.unsolved, ack.unsolved);
  EXPECT_EQ(decoded.ready, ack.ready);

  // Trailing garbage after the declared fields is malformed, not ignored —
  // a liveness probe must never "succeed" on a corrupt ack.
  std::vector<std::uint8_t> payload(view.payload.begin(), view.payload.end());
  payload.push_back(0xAA);
  EXPECT_FALSE(decode_health_ack(payload, decoded));

  // And a truncated ack (nonce only) is malformed too.
  std::vector<std::uint8_t> short_payload(view.payload.begin(),
                                          view.payload.begin() + 1);
  EXPECT_FALSE(decode_health_ack(short_payload, decoded));
}

TEST(FramesV2, CrHintAckHostileCountIsMalformedNotOverread) {
  // An entry count claiming more pairs than the payload could possibly
  // hold must fail the decode cleanly before any allocation or overread.
  CrHintAckPayload ack;
  ack.epoch = 1;
  ack.advisory_cr_centi = 7000;
  ack.entries = {{1, 7000}};
  const auto buf = encode_one([&](auto& b) { encode_cr_hint_ack(b, ack); });
  const auto view = must_peek(buf);
  std::vector<std::uint8_t> payload(view.payload.begin(), view.payload.end());
  // Layout: epoch(varint=1B) advisory(varint=2B) count(varint=1B) ...
  ASSERT_EQ(payload[3], 1u);
  payload[3] = 0x7F;  // Claims 127 entries; only one follows.
  CrHintAckPayload decoded;
  EXPECT_FALSE(decode_cr_hint_ack(payload, decoded));

  // Trailing garbage after the declared entries is malformed too.
  payload[3] = 1;
  payload.push_back(0xAA);
  EXPECT_FALSE(decode_cr_hint_ack(payload, decoded));
}

TEST(FramesV2, OverstatedCountsAreMalformedNotOverreads) {
  // A count claiming more entries than the payload holds must fail the
  // decode cleanly (latched reader), never read past the frame.
  const auto windows = sample_batch();
  auto buf = encode_one(
      [&](auto& b) { encode_submit_batch(b, windows, 0, WireEncodeOptions{}); });
  auto view = must_peek(buf);
  // Payload starts flags(u8) count(varint); 3 windows encode as one byte.
  std::vector<std::uint8_t> payload(view.payload.begin(), view.payload.end());
  ASSERT_EQ(payload[1], 3u);
  payload[1] = 4;
  std::uint8_t flags = 0;
  std::vector<host::CompressedWindow> decoded;
  EXPECT_FALSE(decode_submit_batch(payload, flags, decoded, nullptr));

  std::vector<std::uint8_t> bodies;
  encode_result_entry(bodies, sample_result(), WireEncodeOptions{});
  const auto rb = encode_one([&](auto& b) { encode_result_batch(b, bodies, 1); });
  view = must_peek(rb);
  payload.assign(view.payload.begin(), view.payload.end());
  ASSERT_EQ(payload[0], 1u);
  payload[0] = 2;
  std::vector<host::WindowResult> results;
  EXPECT_FALSE(decode_result_batch(payload, results, nullptr));
}

TEST(Framing, TruncatedFramesWantMoreBytes) {
  const std::vector<std::vector<std::uint8_t>> frames{
      encode_one([](auto& b) { encode_poll(b, 32); }),
      encode_one([](auto& b) { encode_poll_many(b, 32); }),
      encode_one([](auto& b) {
        encode_submit_batch(b, sample_batch(), kSubmitFlagBlocking,
                            WireEncodeOptions{0.0048828125});
      }),
      encode_one([](auto& b) {
        CrHintAckPayload ack;
        ack.epoch = 5;
        ack.advisory_cr_centi = 7000;
        ack.entries = {{11, 7000}, {42, 6500}};
        encode_cr_hint_ack(b, ack);
      }),
      encode_one([](auto& b) { encode_health(b, 0xA5A5A5A5ull); }),
      encode_one([](auto& b) { encode_health_ack(b, HealthAckPayload{1, 2, 3}); }),
  };
  for (const auto& buf : frames) {
    for (std::size_t len = 0; len < buf.size(); ++len) {
      FrameView view;
      EXPECT_EQ(peek_frame({buf.data(), len}, view), FrameStatus::kNeedMore)
          << "prefix length " << len;
    }
    FrameView view;
    EXPECT_EQ(peek_frame(buf, view), FrameStatus::kOk);
  }
}

TEST(Framing, EveryFlippedBitIsRejected) {
  const std::vector<std::vector<std::uint8_t>> frames{
      encode_one([](auto& b) { encode_submit_ack(b, 0xDEADBEEF); }),
      encode_one([](auto& b) {
        encode_submit_batch_ack(b, std::vector<SubmitBatchAckEntry>{{true, 7}, {false, 0}});
      }),
      encode_one([](auto& b) { encode_cr_hint(b, 9, 64); }),
      encode_one([](auto& b) { encode_health(b, 0xDEAD); }),
      encode_one([](auto& b) { encode_health_ack(b, HealthAckPayload{7, 0, 1}); }),
  };
  for (const auto& buf : frames) {
    for (std::size_t byte = 0; byte < buf.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        auto corrupt = buf;
        corrupt[byte] ^= static_cast<std::uint8_t>(1 << bit);
        FrameView view;
        const auto status = peek_frame(corrupt, view);
        // Whatever the flipped bit hit (magic, version, type, length,
        // payload, CRC), the frame must not decode as a clean kOk of the
        // original — either the status reports the damage, or the length
        // field grew and the parser asks for bytes that never come.
        if (status == FrameStatus::kOk) {
          // A flip in the version byte is the only field the CRC covers
          // that peek reports separately; everything else must fail.
          ADD_FAILURE() << "byte " << byte << " bit " << bit << " accepted";
        }
      }
    }
  }
}

TEST(Framing, UnknownVersionIsSurfacedNotGuessed) {
  auto buf = encode_one([](auto& b) { encode_poll(b, 1); });
  buf[2] = kWireVersionMax + 1;  // Future version past everything we speak...
  // ...with a correct CRC (a real future sender would checksum correctly).
  const std::uint32_t crc = crc32c(buf.data(), buf.size() - kFrameTrailerBytes);
  buf[buf.size() - 4] = static_cast<std::uint8_t>(crc);
  buf[buf.size() - 3] = static_cast<std::uint8_t>(crc >> 8);
  buf[buf.size() - 2] = static_cast<std::uint8_t>(crc >> 16);
  buf[buf.size() - 1] = static_cast<std::uint8_t>(crc >> 24);
  FrameView view;
  EXPECT_EQ(peek_frame(buf, view), FrameStatus::kBadVersion);
  EXPECT_EQ(view.version, kWireVersionMax + 1);
  EXPECT_EQ(view.frame_bytes, buf.size());  // Skippable without a guess.
}

TEST(Framing, OversizedLengthRejectedBeforeBuffering) {
  std::vector<std::uint8_t> buf{kMagic0, kMagic1, kWireVersion,
                                static_cast<std::uint8_t>(FrameType::kPoll),
                                0xFF, 0xFF, 0xFF, 0x7F};
  FrameView view;
  EXPECT_EQ(peek_frame(buf, view), FrameStatus::kOversized);
}

TEST(Framing, GarbageBytesAreBadMagic) {
  const std::vector<std::uint8_t> buf{0x00, 0x01, 0x02, 0x03};
  FrameView view;
  EXPECT_EQ(peek_frame(buf, view), FrameStatus::kBadMagic);
}

// --- Golden frames -----------------------------------------------------------

struct Golden {
  std::string name;
  std::vector<std::uint8_t> bytes;
};

std::vector<Golden> golden_set() {
  std::vector<Golden> set;
  set.push_back({"hello.bin", encode_one([](auto& b) { encode_hello(b, HelloPayload{1, 1}); })});
  set.push_back({"hello_ack.bin", encode_one([](auto& b) { encode_hello_ack(b, 1); })});
  set.push_back({"error_unsupported_version.bin", encode_one([](auto& b) {
                   encode_error(b, ErrorPayload{ErrorCode::kUnsupportedVersion,
                                                "no mutual wire version"});
                 })});
  set.push_back({"submit_window_fixed16.bin", encode_one([](auto& b) {
                   encode_submit_window(b, sample_window(), kSubmitFlagBlocking,
                                        WireEncodeOptions{0.0048828125});
                 })});
  set.push_back({"result_float64.bin", encode_one([](auto& b) {
                   encode_result(b, sample_result(), WireEncodeOptions{});
                 })});
  set.push_back({"poll.bin", encode_one([](auto& b) { encode_poll(b, 64); })});
  set.push_back({"slo_state.bin", encode_one([](auto& b) {
                   SloStatePayload slo;
                   slo.patient_id = 42;
                   slo.present = true;
                   slo.state.submitted = 10;
                   slo.state.completed = 10;
                   slo.state.retrieved = 9;
                   slo.state.sum_us = 123456;
                   slo.state.max_us = 40000;
                   slo.state.max_in_flight = 4;
                   slo.state.elapsed_us = 2000000;
                   slo.state.buckets = {{96, 3}, {104, 7}};
                   encode_slo_state(b, FrameType::kSloState, slo);
                 })});
  set.push_back({"snapshot.bin", encode_one([](auto& b) {
                   SnapshotPayload s;
                   s.submitted = 1000;
                   s.completed = 990;
                   s.retrieved = 980;
                   s.shed_routine = 7;
                   s.shed_urgent = 3;
                   s.rejected = 11;
                   s.deadline_violations = 5;
                   s.unsolved = 0;
                   s.ready = 10;
                   encode_snapshot(b, s);
                 })});
  set.push_back({"bye.bin", encode_one([](auto& b) { encode_bye(b); })});
  // v2 batched frames (header version byte = 2).
  set.push_back({"submit_batch.bin", encode_one([](auto& b) {
                   encode_submit_batch(b, sample_batch(), kSubmitFlagBlocking,
                                       WireEncodeOptions{0.0048828125});
                 })});
  set.push_back({"submit_batch_ack.bin", encode_one([](auto& b) {
                   encode_submit_batch_ack(
                       b, std::vector<SubmitBatchAckEntry>{{true, 100}, {false, 0}, {true, 101}});
                 })});
  set.push_back({"poll_many.bin", encode_one([](auto& b) { encode_poll_many(b, 64); })});
  set.push_back({"result_batch.bin", encode_one([](auto& b) {
                   std::vector<std::uint8_t> bodies;
                   auto first = sample_result();
                   auto second = sample_result();
                   second.window_index = 8;
                   second.ticket = 12346;
                   encode_result_entry(bodies, first, WireEncodeOptions{});
                   encode_result_entry(bodies, second, WireEncodeOptions{});
                   encode_result_batch(b, bodies, 2);
                 })});
  set.push_back({"cr_hint.bin", encode_one([](auto& b) { encode_cr_hint(b, 1, 64); })});
  set.push_back({"cr_hint_ack.bin", encode_one([](auto& b) {
                   CrHintAckPayload ack;
                   ack.epoch = 1;
                   ack.advisory_cr_centi = 7000;
                   ack.entries = {{7, 7000}, {21, 7000}};
                   encode_cr_hint_ack(b, ack);
                 })});
  set.push_back({"health.bin", encode_one([](auto& b) { encode_health(b, 7); })});
  set.push_back({"health_ack.bin", encode_one([](auto& b) {
                   encode_health_ack(b, HealthAckPayload{7, 12, 3});
                 })});
  return set;
}

std::string golden_dir() { return WBSN_GOLDEN_FRAME_DIR; }

TEST(Golden, CommittedFramesMatchEncoderByteForByte) {
  const auto set = golden_set();
  if (std::getenv("WBSN_REGEN_GOLDEN") != nullptr) {
    for (const auto& g : set) {
      std::ofstream out(golden_dir() + "/" + g.name, std::ios::binary | std::ios::trunc);
      ASSERT_TRUE(out.good()) << g.name;
      out.write(reinterpret_cast<const char*>(g.bytes.data()),
                static_cast<std::streamsize>(g.bytes.size()));
    }
    GTEST_SKIP() << "regenerated " << set.size() << " golden frames";
  }
  for (const auto& g : set) {
    std::ifstream in(golden_dir() + "/" + g.name, std::ios::binary);
    ASSERT_TRUE(in.good()) << "missing golden frame " << g.name
                           << " (run with WBSN_REGEN_GOLDEN=1 to create)";
    std::vector<std::uint8_t> disk((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
    ASSERT_EQ(disk.size(), g.bytes.size()) << g.name;
    EXPECT_EQ(std::memcmp(disk.data(), g.bytes.data(), disk.size()), 0)
        << g.name << ": committed bytes diverge from the current encoder — "
        << "either fix the regression or consciously regenerate + update "
        << "docs/WIRE_FORMAT.md";
  }
}

TEST(Golden, CommittedSubmitWindowDecodesIndependently) {
  // Decode the *file*, not the encoder's output: proves a fresh decoder
  // implementation agrees with the committed spec fixtures.
  std::ifstream in(golden_dir() + "/submit_window_fixed16.bin", std::ios::binary);
  ASSERT_TRUE(in.good());
  std::vector<std::uint8_t> disk((std::istreambuf_iterator<char>(in)),
                                 std::istreambuf_iterator<char>());
  FrameView view;
  ASSERT_EQ(peek_frame(disk, view), FrameStatus::kOk);
  ASSERT_EQ(view.type, FrameType::kSubmitWindow);
  host::CompressedWindow w;
  std::uint8_t flags = 0;
  ASSERT_TRUE(decode_submit_window(view.payload, w, flags, nullptr));
  const auto expect = sample_window();
  EXPECT_EQ(flags, kSubmitFlagBlocking);
  EXPECT_EQ(w.patient_id, expect.patient_id);
  EXPECT_EQ(w.window_index, expect.window_index);
  EXPECT_EQ(w.matrix_seed, expect.matrix_seed);
  EXPECT_EQ(w.window_samples, expect.window_samples);
  EXPECT_EQ(w.priority, expect.priority);
  ASSERT_EQ(w.measurements.size(), expect.measurements.size());
  EXPECT_EQ(std::memcmp(w.measurements.data(), expect.measurements.data(),
                        w.measurements.size() * sizeof(double)),
            0);
}

}  // namespace
}  // namespace wbsn::net
