#include <gtest/gtest.h>

#include "energy/mcu.hpp"
#include "energy/node.hpp"
#include "energy/radio.hpp"

namespace wbsn::energy {
namespace {

TEST(Dvfs, TableIsMonotone) {
  double prev_vdd = 0.0;
  for (double f : {0.5e6, 1e6, 4e6, 8e6, 16e6, 25e6}) {
    const auto point = dvfs_point_for(f);
    EXPECT_GE(point.vdd, prev_vdd) << f;
    prev_vdd = point.vdd;
  }
}

TEST(Dvfs, ClampsAboveTable) {
  const auto point = dvfs_point_for(100e6);
  EXPECT_DOUBLE_EQ(point.vdd, 3.3);
  EXPECT_DOUBLE_EQ(point.f_hz, 25e6);
}

TEST(Mcu, CyclesWeightedByOpClass) {
  McuModel mcu;
  dsp::OpCount ops;
  ops.add = 100;
  EXPECT_EQ(mcu.cycles(ops), 100u);
  ops.div = 10;
  EXPECT_EQ(mcu.cycles(ops), 100u + 10u * mcu.cycles_div);
  ops.mul = 5;
  EXPECT_EQ(mcu.cycles(ops), 100u + 220u + 5u * mcu.cycles_mul);
}

TEST(Mcu, EnergyScalesWithVddSquared) {
  McuModel low;
  low.vdd = 1.8;
  McuModel high = low;
  high.vdd = 3.6;
  dsp::OpCount ops;
  ops.add = 1000;
  EXPECT_NEAR(high.energy_j(ops) / low.energy_j(ops), 4.0, 1e-9);
}

TEST(Mcu, DutyCycleDefinition) {
  McuModel mcu;
  mcu.f_hz = 1e6;
  dsp::OpCount ops;
  ops.add = 100000;  // 100k cycles at 1 MHz = 100 ms.
  EXPECT_NEAR(mcu.duty_cycle(ops, 1.0), 0.1, 1e-12);
}

TEST(Mcu, AtFrequencyPicksDvfsPoint) {
  McuModel mcu;
  const auto fast = mcu.at_frequency(16e6);
  EXPECT_DOUBLE_EQ(fast.vdd, 2.8);
  const auto slow = mcu.at_frequency(0.8e6);
  EXPECT_DOUBLE_EQ(slow.vdd, 1.8);
  EXPECT_LT(slow.energy_per_cycle_j(), fast.energy_per_cycle_j());
}

TEST(Radio, PerByteEnergyMatchesLinkRate) {
  RadioModel radio;
  // 32 us per byte at 250 kb/s; 52.2 mW TX -> ~1.67 uJ/byte.
  EXPECT_NEAR(radio.energy_per_tx_byte_j(), 1.67e-6, 0.02e-6);
}

TEST(Radio, FragmentationCounts) {
  RadioModel radio;
  EXPECT_EQ(radio.frames_for(0), 0u);
  EXPECT_EQ(radio.frames_for(1), 1u);
  EXPECT_EQ(radio.frames_for(116), 1u);
  EXPECT_EQ(radio.frames_for(117), 2u);
  EXPECT_EQ(radio.frames_for(1160), 10u);
}

TEST(Radio, OverheadPenalizesSmallPayloads) {
  RadioModel radio;
  // Energy per payload byte is far worse for a 5-byte packet than a full
  // frame: the fixed-cost argument for aggregating notifications.
  const double small = radio.energy_tx_burst_j(5) / 5.0;
  const double full = radio.energy_tx_burst_j(116) / 116.0;
  EXPECT_GT(small, 5.0 * full);
}

TEST(Radio, EnergyMonotoneInPayload) {
  RadioModel radio;
  double prev = 0.0;
  for (std::uint32_t bytes : {10u, 100u, 500u, 1000u, 5000u}) {
    const double e = radio.energy_tx_burst_j(bytes);
    EXPECT_GT(e, prev);
    prev = e;
  }
}

TEST(Radio, AirtimeConsistentWithBitrate) {
  RadioModel radio;
  // 1160 bytes payload in 10 frames: > payload bits / bitrate.
  const double t = radio.airtime_s(1160);
  EXPECT_GT(t, 1160.0 * 8.0 / 250e3);
  EXPECT_LT(t, 2.0 * 1160.0 * 8.0 / 250e3);
}

TEST(Node, BreakdownSumsToTotal) {
  NodeEnergyModel node;
  dsp::OpCount ops;
  ops.add = 50000;
  const auto breakdown = node.window_energy(768, ops, 1536, 2.048);
  EXPECT_NEAR(breakdown.total_j(), breakdown.radio_j + breakdown.sampling_j +
                                       breakdown.os_j + breakdown.computation_j,
              1e-15);
  EXPECT_GT(breakdown.radio_j, 0.0);
  EXPECT_GT(breakdown.sampling_j, 0.0);
  EXPECT_GT(breakdown.os_j, 0.0);
  EXPECT_GT(breakdown.computation_j, 0.0);
}

TEST(Node, RadioDominatesRawStreaming) {
  // The paper's premise: streaming raw data is radio-bound.
  NodeEnergyModel node;
  dsp::OpCount no_processing;
  const auto breakdown = node.window_energy(2304, no_processing, 1536, 2.048);
  EXPECT_GT(breakdown.radio_j, 0.5 * breakdown.total_j());
}

TEST(Node, CompressionShiftsEnergyOffRadio) {
  NodeEnergyModel node;
  dsp::OpCount cs_ops;
  cs_ops.add = 6144;   // 3 leads x 512 samples x d=4 adds.
  cs_ops.load = 20000;
  cs_ops.store = 2000;
  const auto raw = node.window_energy(2304, {}, 1536, 2.048);
  const auto cs = node.window_energy(784, cs_ops, 1536, 2.048);  // CR ~66 %.
  EXPECT_LT(cs.radio_j, 0.40 * raw.radio_j);
  EXPECT_LT(cs.total_j(), raw.total_j());
  // Computation cost is tiny relative to the radio savings.
  EXPECT_LT(cs.computation_j, 0.2 * (raw.radio_j - cs.radio_j));
}

TEST(Battery, WeekOfOperationAtMilliwatt) {
  BatteryModel battery;  // 150 mAh @ 3.7 V, 85 % usable.
  // ~ 1.7 kJ usable -> at 2.5 mW a week is plausible (the Section V
  // "mean time between charges is typically one week").
  const double hours = battery.lifetime_hours(2.5e-3);
  EXPECT_GT(hours, 5.0 * 24.0);
  EXPECT_LT(hours, 14.0 * 24.0);
}

TEST(Battery, LifetimeInverseInPower) {
  BatteryModel battery;
  EXPECT_NEAR(battery.lifetime_hours(1e-3) / battery.lifetime_hours(2e-3), 2.0, 1e-9);
}

}  // namespace
}  // namespace wbsn::energy
