#include "delin/qrs_detect.hpp"

#include <gtest/gtest.h>

#include "delin/eval.hpp"
#include "sig/adc.hpp"
#include "sig/dataset.hpp"
#include "sig/ecg_synth.hpp"

namespace wbsn::delin {
namespace {

std::vector<std::int32_t> counts_of(const sig::Record& rec, std::size_t lead = 0) {
  return sig::quantize(rec.leads[lead], sig::AdcConfig{});
}

TEST(QrsDetect, EmptyAndTinyInputs) {
  EXPECT_TRUE(detect_qrs({}).r_peaks.empty());
  const std::vector<std::int32_t> tiny(8, 0);
  EXPECT_TRUE(detect_qrs(tiny).r_peaks.empty());
}

TEST(QrsDetect, FlatSignalNoBeats) {
  const std::vector<std::int32_t> flat(5000, 100);
  EXPECT_TRUE(detect_qrs(flat).r_peaks.empty());
}

TEST(QrsDetect, CleanSinusPerfectDetection) {
  sig::SynthConfig cfg;
  cfg.episodes = {{sig::RhythmEpisode::Kind::kSinus, 60}};
  cfg.noise = sig::NoiseParams::preset(sig::NoiseLevel::kNone);
  sig::Rng rng(1);
  const auto rec = synthesize_ecg(cfg, rng);
  const auto detected = detect_qrs(counts_of(rec));
  const auto stats = evaluate_r_detection(rec.r_peaks(), detected.r_peaks, rec.fs);
  EXPECT_EQ(stats.fn, 0);
  EXPECT_EQ(stats.fp, 0);
  EXPECT_LT(stats.rms_error_ms(), 10.0);
}

TEST(QrsDetect, RateSweep) {
  for (double hr : {50.0, 70.0, 90.0, 110.0}) {
    sig::SynthConfig cfg;
    cfg.episodes = {{sig::RhythmEpisode::Kind::kSinus, 50}};
    cfg.sinus.mean_hr_bpm = hr;
    cfg.noise = sig::NoiseParams::preset(sig::NoiseLevel::kNone);
    sig::Rng rng(static_cast<std::uint64_t>(hr));
    const auto rec = synthesize_ecg(cfg, rng);
    const auto detected = detect_qrs(counts_of(rec));
    const auto stats = evaluate_r_detection(rec.r_peaks(), detected.r_peaks, rec.fs);
    EXPECT_GT(stats.sensitivity(), 0.98) << "hr=" << hr;
    EXPECT_GT(stats.positive_predictivity(), 0.98) << "hr=" << hr;
  }
}

TEST(QrsDetect, RobustToModerateNoise) {
  sig::SynthConfig cfg;
  cfg.episodes = {{sig::RhythmEpisode::Kind::kSinus, 80}};
  cfg.noise = sig::NoiseParams::preset(sig::NoiseLevel::kModerate);
  sig::Rng rng(2);
  const auto rec = synthesize_ecg(cfg, rng);
  const auto detected = detect_qrs(counts_of(rec));
  const auto stats = evaluate_r_detection(rec.r_peaks(), detected.r_peaks, rec.fs);
  EXPECT_GT(stats.sensitivity(), 0.95);
  EXPECT_GT(stats.positive_predictivity(), 0.95);
}

TEST(QrsDetect, HandlesEctopics) {
  sig::SynthConfig cfg;
  cfg.episodes = {{sig::RhythmEpisode::Kind::kSinus, 150}};
  cfg.pvc_probability = 0.10;
  cfg.apc_probability = 0.05;
  cfg.noise = sig::NoiseParams::preset(sig::NoiseLevel::kLow);
  sig::Rng rng(3);
  const auto rec = synthesize_ecg(cfg, rng);
  const auto detected = detect_qrs(counts_of(rec));
  const auto stats = evaluate_r_detection(rec.r_peaks(), detected.r_peaks, rec.fs);
  EXPECT_GT(stats.sensitivity(), 0.95);
  EXPECT_GT(stats.positive_predictivity(), 0.95);
}

TEST(QrsDetect, IrregularAfRhythm) {
  sig::SynthConfig cfg;
  cfg.episodes = {{sig::RhythmEpisode::Kind::kAfib, 100}};
  cfg.noise = sig::NoiseParams::preset(sig::NoiseLevel::kLow);
  sig::Rng rng(4);
  const auto rec = synthesize_ecg(cfg, rng);
  const auto detected = detect_qrs(counts_of(rec));
  const auto stats = evaluate_r_detection(rec.r_peaks(), detected.r_peaks, rec.fs);
  EXPECT_GT(stats.sensitivity(), 0.93);
  EXPECT_GT(stats.positive_predictivity(), 0.93);
}

TEST(QrsDetect, RefractoryPreventsDoubleFiring) {
  sig::SynthConfig cfg;
  cfg.episodes = {{sig::RhythmEpisode::Kind::kSinus, 40}};
  cfg.noise = sig::NoiseParams::preset(sig::NoiseLevel::kNone);
  sig::Rng rng(5);
  const auto rec = synthesize_ecg(cfg, rng);
  const auto detected = detect_qrs(counts_of(rec));
  for (std::size_t i = 1; i < detected.r_peaks.size(); ++i) {
    EXPECT_GE(detected.r_peaks[i] - detected.r_peaks[i - 1],
              static_cast<std::int64_t>(0.2 * rec.fs));
  }
}

TEST(QrsDetect, ReportsOps) {
  sig::SynthConfig cfg;
  cfg.episodes = {{sig::RhythmEpisode::Kind::kSinus, 10}};
  sig::Rng rng(6);
  const auto rec = synthesize_ecg(cfg, rng);
  const auto counts = counts_of(rec);
  const auto detected = detect_qrs(counts);
  // At least the linear-pass stages must be accounted for.
  EXPECT_GT(detected.ops.total(), 5 * counts.size());
  EXPECT_GT(detected.ops.mul, 0u);  // Squaring stage.
}

TEST(QrsDetect, DatasetWideAccuracy) {
  sig::DatasetSpec spec;
  spec.num_records = 8;
  spec.beats_per_record = 60;
  spec.noise = sig::NoiseLevel::kLow;
  const auto records = sig::make_sinus_dataset(spec);
  int tp = 0;
  int fn = 0;
  int fp = 0;
  for (const auto& rec : records) {
    const auto detected = detect_qrs(counts_of(rec));
    const auto stats = evaluate_r_detection(rec.r_peaks(), detected.r_peaks, rec.fs);
    tp += stats.tp;
    fn += stats.fn;
    fp += stats.fp;
  }
  const double sens = static_cast<double>(tp) / (tp + fn);
  const double ppv = static_cast<double>(tp) / (tp + fp);
  EXPECT_GT(sens, 0.99);
  EXPECT_GT(ppv, 0.99);
}

}  // namespace
}  // namespace wbsn::delin
