// Shared accuracy tests for both delineators (morphological and wavelet),
// parameterized so every invariant is checked on each.
#include <gtest/gtest.h>

#include "delin/eval.hpp"
#include "delin/pipeline.hpp"
#include "sig/adc.hpp"
#include "sig/dataset.hpp"
#include "sig/ecg_synth.hpp"

namespace wbsn::delin {
namespace {

sig::Record make_record(int beats, sig::NoiseLevel noise, std::uint64_t seed,
                        double hr = 70.0) {
  sig::SynthConfig cfg;
  cfg.episodes = {{sig::RhythmEpisode::Kind::kSinus, beats}};
  cfg.sinus.mean_hr_bpm = hr;
  cfg.noise = sig::NoiseParams::preset(noise);
  sig::Rng rng(seed);
  return synthesize_ecg(cfg, rng);
}

PipelineResult run(const sig::Record& rec, Delineator which) {
  PipelineConfig cfg;
  cfg.fs = rec.fs;
  cfg.delineator = which;
  const auto leads = sig::quantize_leads(rec.leads, sig::AdcConfig{});
  return run_delineation_pipeline(leads, cfg);
}

class DelineatorTest : public ::testing::TestWithParam<Delineator> {};

TEST_P(DelineatorTest, CleanRecordAllPointsAbove90) {
  const auto rec = make_record(60, sig::NoiseLevel::kNone, 11);
  const auto result = run(rec, GetParam());
  const auto score = evaluate_delineation(rec.beats, result.beats,
                                          EvalConfig{.fs = rec.fs});
  for (std::size_t k = 0; k < kNumFiducialKinds; ++k) {
    const auto kind = static_cast<FiducialKind>(k);
    EXPECT_GT(score.at(kind).sensitivity(), 0.90) << to_string(kind);
    EXPECT_GT(score.at(kind).positive_predictivity(), 0.90) << to_string(kind);
  }
}

TEST_P(DelineatorTest, LowNoiseStillAbove90ForPeaks) {
  const auto rec = make_record(60, sig::NoiseLevel::kLow, 12);
  const auto result = run(rec, GetParam());
  const auto score = evaluate_delineation(rec.beats, result.beats,
                                          EvalConfig{.fs = rec.fs});
  for (auto kind : {FiducialKind::kPPeak, FiducialKind::kRPeak, FiducialKind::kTPeak}) {
    EXPECT_GT(score.at(kind).sensitivity(), 0.90) << to_string(kind);
    EXPECT_GT(score.at(kind).positive_predictivity(), 0.90) << to_string(kind);
  }
}

TEST_P(DelineatorTest, TimingErrorsSmallOnCleanData) {
  const auto rec = make_record(50, sig::NoiseLevel::kNone, 13);
  const auto result = run(rec, GetParam());
  const auto score = evaluate_delineation(rec.beats, result.beats,
                                          EvalConfig{.fs = rec.fs});
  EXPECT_LT(score.at(FiducialKind::kRPeak).rms_error_ms(), 12.0);
  EXPECT_LT(score.at(FiducialKind::kPPeak).rms_error_ms(), 25.0);
  EXPECT_LT(score.at(FiducialKind::kTPeak).rms_error_ms(), 25.0);
}

TEST_P(DelineatorTest, PvcBeatsHaveNoPWave) {
  sig::SynthConfig cfg;
  cfg.episodes = {{sig::RhythmEpisode::Kind::kSinus, 120}};
  cfg.pvc_probability = 0.12;
  cfg.noise = sig::NoiseParams::preset(sig::NoiseLevel::kNone);
  sig::Rng rng(14);
  const auto rec = synthesize_ecg(cfg, rng);
  const auto result = run(rec, GetParam());
  // Count P detections on PVC vs normal truth beats.
  int pvc_with_p = 0;
  int pvc_total = 0;
  int normal_with_p = 0;
  int normal_total = 0;
  for (const auto& truth : rec.beats) {
    // Find the matching detection.
    const sig::BeatAnnotation* match = nullptr;
    for (const auto& det : result.beats) {
      if (std::abs(det.r_peak - truth.r_peak) < 0.1 * rec.fs) {
        match = &det;
        break;
      }
    }
    if (match == nullptr) continue;
    if (truth.label == sig::BeatClass::kPvc) {
      ++pvc_total;
      pvc_with_p += match->p.valid();
    } else {
      ++normal_total;
      normal_with_p += match->p.valid();
    }
  }
  ASSERT_GT(pvc_total, 5);
  ASSERT_GT(normal_total, 50);
  // P-wave presence discrimination: strong asymmetry expected.
  EXPECT_LT(static_cast<double>(pvc_with_p) / pvc_total, 0.35);
  EXPECT_GT(static_cast<double>(normal_with_p) / normal_total, 0.90);
}

TEST_P(DelineatorTest, PWaveRateDiscriminatesAfFromSinus) {
  // During AF no true P exists, but coarse fibrillatory activity can leave
  // P-like bumps before some QRS complexes (exactly as in real coarse AF),
  // so a per-beat rate of zero is not achievable — nor needed.  What the
  // downstream AF detector requires is a wide margin between the P-detect
  // rate in AF and in sinus rhythm; assert that contrast.
  const auto p_rate = [&](sig::RhythmEpisode::Kind kind, std::uint64_t seed) {
    sig::SynthConfig cfg;
    cfg.episodes = {{kind, 80}};
    cfg.noise = sig::NoiseParams::preset(sig::NoiseLevel::kNone);
    sig::Rng rng(seed);
    const auto rec = synthesize_ecg(cfg, rng);
    const auto result = run(rec, GetParam());
    int with_p = 0;
    for (const auto& det : result.beats) with_p += det.p.valid();
    EXPECT_GT(result.beats.size(), 60u);
    return static_cast<double>(with_p) / static_cast<double>(result.beats.size());
  };
  const double af_rate = p_rate(sig::RhythmEpisode::Kind::kAfib, 15);
  const double sinus_rate = p_rate(sig::RhythmEpisode::Kind::kSinus, 15);
  EXPECT_LT(af_rate, 0.50);
  EXPECT_GT(sinus_rate, 0.90);
  EXPECT_GT(sinus_rate - af_rate, 0.40);
}

TEST_P(DelineatorTest, FiducialOrderingIsPhysiological) {
  const auto rec = make_record(40, sig::NoiseLevel::kNone, 16);
  const auto result = run(rec, GetParam());
  for (const auto& beat : result.beats) {
    ASSERT_TRUE(beat.qrs.valid());
    EXPECT_LE(beat.qrs.onset, beat.qrs.peak);
    EXPECT_LE(beat.qrs.peak, beat.qrs.offset);
    if (beat.p.valid()) {
      EXPECT_LE(beat.p.onset, beat.p.peak);
      EXPECT_LE(beat.p.peak, beat.p.offset);
      EXPECT_LT(beat.p.peak, beat.qrs.onset);
    }
    if (beat.t.valid()) {
      EXPECT_LE(beat.t.onset, beat.t.peak);
      EXPECT_LE(beat.t.peak, beat.t.offset);
      EXPECT_GT(beat.t.peak, beat.qrs.offset);
    }
  }
}

TEST_P(DelineatorTest, EmptyInputsAreSafe) {
  PipelineConfig cfg;
  cfg.delineator = GetParam();
  const auto result = run_delineation_pipeline({}, cfg);
  EXPECT_TRUE(result.beats.empty());
  EXPECT_TRUE(result.r_peaks.empty());
}

INSTANTIATE_TEST_SUITE_P(Both, DelineatorTest,
                         ::testing::Values(Delineator::kMorphological,
                                           Delineator::kWavelet),
                         [](const auto& info) {
                           return info.param == Delineator::kMorphological ? "Mmd"
                                                                           : "Wavelet";
                         });

TEST(Pipeline, MultiLeadBeatsSingleLeadUnderNoise) {
  // The BIBE-2012 result the paper cites: RMS lead combination improves
  // robustness.  Compare worst-point sensitivity with and without
  // combination on a noisy record.
  sig::SynthConfig scfg;
  scfg.episodes = {{sig::RhythmEpisode::Kind::kSinus, 80}};
  scfg.noise = sig::NoiseParams::preset(sig::NoiseLevel::kModerate);
  sig::Rng rng(17);
  const auto rec = synthesize_ecg(scfg, rng);
  const auto leads = sig::quantize_leads(rec.leads, sig::AdcConfig{});

  PipelineConfig multi;
  multi.fs = rec.fs;
  multi.combine_leads = true;
  PipelineConfig single = multi;
  single.combine_leads = false;

  const auto r_multi = run_delineation_pipeline(leads, multi);
  const auto r_single = run_delineation_pipeline(leads, single);
  const auto s_multi =
      evaluate_delineation(rec.beats, r_multi.beats, EvalConfig{.fs = rec.fs});
  const auto s_single =
      evaluate_delineation(rec.beats, r_single.beats, EvalConfig{.fs = rec.fs});
  // Combination must not hurt, and the R peak must remain solid.
  EXPECT_GE(s_multi.at(FiducialKind::kRPeak).sensitivity() + 0.02,
            s_single.at(FiducialKind::kRPeak).sensitivity());
  EXPECT_GT(s_multi.at(FiducialKind::kRPeak).sensitivity(), 0.95);
}

TEST(Pipeline, OpCountsArePerStage) {
  const auto rec = make_record(20, sig::NoiseLevel::kNone, 18);
  const auto leads = sig::quantize_leads(rec.leads, sig::AdcConfig{});
  const auto result = run_delineation_pipeline(leads, PipelineConfig{});
  EXPECT_GT(result.filter_ops.total(), 0u);
  EXPECT_GT(result.combine_ops.total(), 0u);
  EXPECT_GT(result.qrs_ops.total(), 0u);
  EXPECT_GT(result.delineation_ops.total(), 0u);
  const auto total = result.total_ops();
  EXPECT_EQ(total.total(), result.filter_ops.total() + result.combine_ops.total() +
                               result.qrs_ops.total() + result.delineation_ops.total());
}

}  // namespace
}  // namespace wbsn::delin
