#include "delin/eval.hpp"

#include <gtest/gtest.h>

namespace wbsn::delin {
namespace {

sig::BeatAnnotation beat_at(std::int64_t r, bool with_p = true, bool with_t = true) {
  sig::BeatAnnotation b;
  b.r_peak = r;
  b.qrs = {r - 15, r, r + 15};
  if (with_p) b.p = {r - 60, r - 50, r - 40};
  if (with_t) b.t = {r + 50, r + 75, r + 100};
  return b;
}

TEST(EvalDelineation, PerfectMatchIsAllTp) {
  std::vector<sig::BeatAnnotation> truth = {beat_at(250), beat_at(500), beat_at(750)};
  const auto score = evaluate_delineation(truth, truth);
  for (std::size_t k = 0; k < kNumFiducialKinds; ++k) {
    EXPECT_EQ(score.points[k].tp, 3) << k;
    EXPECT_EQ(score.points[k].fn, 0) << k;
    EXPECT_EQ(score.points[k].fp, 0) << k;
    EXPECT_DOUBLE_EQ(score.points[k].sensitivity(), 1.0);
    EXPECT_DOUBLE_EQ(score.points[k].mean_error_ms(), 0.0);
  }
}

TEST(EvalDelineation, MissedBeatCountsAllPointsAsFn) {
  std::vector<sig::BeatAnnotation> truth = {beat_at(250), beat_at(500)};
  std::vector<sig::BeatAnnotation> detected = {beat_at(250)};
  const auto score = evaluate_delineation(truth, detected);
  EXPECT_EQ(score.at(FiducialKind::kRPeak).tp, 1);
  EXPECT_EQ(score.at(FiducialKind::kRPeak).fn, 1);
  EXPECT_EQ(score.at(FiducialKind::kPPeak).fn, 1);
  EXPECT_EQ(score.at(FiducialKind::kTOff).fn, 1);
}

TEST(EvalDelineation, SpuriousBeatCountsAllPointsAsFp) {
  std::vector<sig::BeatAnnotation> truth = {beat_at(250)};
  std::vector<sig::BeatAnnotation> detected = {beat_at(250), beat_at(600)};
  const auto score = evaluate_delineation(truth, detected);
  EXPECT_EQ(score.at(FiducialKind::kRPeak).fp, 1);
  EXPECT_EQ(score.at(FiducialKind::kPOn).fp, 1);
}

TEST(EvalDelineation, SmallShiftWithinToleranceIsTp) {
  std::vector<sig::BeatAnnotation> truth = {beat_at(250)};
  auto shifted = beat_at(250);
  shifted.qrs.peak += 5;  // 20 ms at 250 Hz.
  std::vector<sig::BeatAnnotation> detected = {shifted};
  const auto score = evaluate_delineation(truth, detected);
  EXPECT_EQ(score.at(FiducialKind::kRPeak).tp, 1);
  EXPECT_NEAR(score.at(FiducialKind::kRPeak).mean_error_ms(), 20.0, 1e-9);
}

TEST(EvalDelineation, LargeShiftIsFnPlusFp) {
  std::vector<sig::BeatAnnotation> truth = {beat_at(250)};
  auto shifted = beat_at(250);
  shifted.t.peak += 30;  // 120 ms: outside the 40 ms peak tolerance.
  std::vector<sig::BeatAnnotation> detected = {shifted};
  const auto score = evaluate_delineation(truth, detected);
  EXPECT_EQ(score.at(FiducialKind::kTPeak).tp, 0);
  EXPECT_EQ(score.at(FiducialKind::kTPeak).fn, 1);
  EXPECT_EQ(score.at(FiducialKind::kTPeak).fp, 1);
  // Other points are unaffected.
  EXPECT_EQ(score.at(FiducialKind::kRPeak).tp, 1);
}

TEST(EvalDelineation, AbsentPWaveHandledAsTrueNegative) {
  auto truth_beat = beat_at(250, /*with_p=*/false);
  auto det_beat = beat_at(250, /*with_p=*/false);
  const auto score = evaluate_delineation({&truth_beat, 1}, {&det_beat, 1});
  EXPECT_EQ(score.at(FiducialKind::kPPeak).tp, 0);
  EXPECT_EQ(score.at(FiducialKind::kPPeak).fn, 0);
  EXPECT_EQ(score.at(FiducialKind::kPPeak).fp, 0);
  EXPECT_DOUBLE_EQ(score.at(FiducialKind::kPPeak).sensitivity(), 1.0);
}

TEST(EvalDelineation, HallucinatedPWaveIsFp) {
  auto truth_beat = beat_at(250, /*with_p=*/false);
  auto det_beat = beat_at(250, /*with_p=*/true);
  const auto score = evaluate_delineation({&truth_beat, 1}, {&det_beat, 1});
  EXPECT_EQ(score.at(FiducialKind::kPPeak).fp, 1);
  EXPECT_EQ(score.at(FiducialKind::kPPeak).fn, 0);
}

TEST(EvalDelineation, MissedPWaveIsFn) {
  auto truth_beat = beat_at(250, /*with_p=*/true);
  auto det_beat = beat_at(250, /*with_p=*/false);
  const auto score = evaluate_delineation({&truth_beat, 1}, {&det_beat, 1});
  EXPECT_EQ(score.at(FiducialKind::kPPeak).fn, 1);
  EXPECT_EQ(score.at(FiducialKind::kPPeak).fp, 0);
}

TEST(EvalDelineation, WorstAcrossKindsFindsTheWeakPoint) {
  std::vector<sig::BeatAnnotation> truth = {beat_at(250), beat_at(500)};
  auto d0 = beat_at(250);
  auto d1 = beat_at(500, /*with_p=*/false);  // One missed P.
  std::vector<sig::BeatAnnotation> detected = {d0, d1};
  const auto score = evaluate_delineation(truth, detected);
  EXPECT_DOUBLE_EQ(score.worst_sensitivity(), 0.5);
  EXPECT_DOUBLE_EQ(score.worst_positive_predictivity(), 1.0);
}

TEST(EvalDelineation, AccumulationAcrossRecords) {
  std::vector<sig::BeatAnnotation> truth = {beat_at(250)};
  DelineationScore total;
  total += evaluate_delineation(truth, truth);
  total += evaluate_delineation(truth, truth);
  EXPECT_EQ(total.at(FiducialKind::kRPeak).tp, 2);
}

TEST(EvalRDetection, CountsAndErrors) {
  const std::vector<std::int64_t> truth = {100, 300, 500, 700};
  const std::vector<std::int64_t> detected = {102, 300, 720, 900};
  const auto stats = evaluate_r_detection(truth, detected, 250.0, 60.0);
  // 102 matches 100 (8 ms), 300 exact, 720 matches 700 (80 ms > 60 ms? no:
  // 20 samples = 80 ms exceeds tolerance), 900 unmatched.
  EXPECT_EQ(stats.tp, 2);
  EXPECT_EQ(stats.fn, 2);
  EXPECT_EQ(stats.fp, 2);
  EXPECT_NEAR(stats.mean_error_ms(), 4.0, 1e-9);
}

TEST(EvalRDetection, EmptyLists) {
  const auto stats = evaluate_r_detection({}, {}, 250.0);
  EXPECT_EQ(stats.tp, 0);
  EXPECT_DOUBLE_EQ(stats.sensitivity(), 1.0);
  EXPECT_DOUBLE_EQ(stats.positive_predictivity(), 1.0);
}

}  // namespace
}  // namespace wbsn::delin
