#include "core/apps.hpp"

#include <gtest/gtest.h>

#include "sig/ecg_synth.hpp"
#include "sig/hrv.hpp"

namespace wbsn::core {
namespace {

std::vector<sig::BeatAnnotation> beats_from_rr(const std::vector<double>& rr, double fs) {
  std::vector<sig::BeatAnnotation> beats;
  double t = 1.0;
  for (double interval : rr) {
    t += interval;
    sig::BeatAnnotation b;
    b.r_peak = static_cast<std::int64_t>(t * fs);
    b.qrs = {b.r_peak - 10, b.r_peak, b.r_peak + 10};
    beats.push_back(b);
  }
  return beats;
}

TEST(SleepMonitor, EpochsCoverRecording) {
  sig::Rng rng(1);
  sig::SinusRhythmParams p;
  p.mean_hr_bpm = 62.0;
  const auto rr = sig::generate_sinus_rr(p, 900, rng);  // ~15 minutes.
  const auto beats = beats_from_rr(rr, 250.0);
  const auto epochs = analyze_sleep(beats, 250.0);
  EXPECT_GE(epochs.size(), 6u);
  for (std::size_t i = 1; i < epochs.size(); ++i) {
    EXPECT_GT(epochs[i].start_s, epochs[i - 1].start_s);
  }
}

TEST(SleepMonitor, FastRateScoresWake) {
  sig::Rng rng(2);
  sig::SinusRhythmParams p;
  p.mean_hr_bpm = 85.0;
  const auto rr = sig::generate_sinus_rr(p, 400, rng);
  const auto epochs = analyze_sleep(beats_from_rr(rr, 250.0), 250.0);
  ASSERT_FALSE(epochs.empty());
  for (const auto& e : epochs) EXPECT_EQ(e.stage, SleepStage::kWake);
}

TEST(SleepMonitor, SlowVagalRateScoresSleep) {
  // Slow rate with strong respiratory (HF) modulation: light or deep.
  sig::Rng rng(3);
  sig::SinusRhythmParams p;
  p.mean_hr_bpm = 55.0;
  p.rsa_depth = 0.06;
  p.mayer_depth = 0.005;
  const auto rr = sig::generate_sinus_rr(p, 500, rng);
  const auto epochs = analyze_sleep(beats_from_rr(rr, 250.0), 250.0);
  ASSERT_FALSE(epochs.empty());
  for (const auto& e : epochs) EXPECT_NE(e.stage, SleepStage::kWake);
}

TEST(SleepMonitor, TooFewBeatsYieldNothing) {
  const auto epochs = analyze_sleep(beats_from_rr({0.8, 0.8}, 250.0), 250.0);
  EXPECT_TRUE(epochs.empty());
}

TEST(ArrhythmiaMonitor, PvcRunRaisesOneEvent) {
  std::vector<double> rr(30, 0.8);
  const auto beats = beats_from_rr(rr, 250.0);
  std::vector<cls::BeatLabel> labels(beats.size(), cls::BeatLabel::kNormal);
  labels[10] = cls::BeatLabel::kVentricular;
  labels[11] = cls::BeatLabel::kVentricular;
  labels[12] = cls::BeatLabel::kVentricular;
  const auto events = detect_events(beats, labels, {}, 250.0);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, ArrhythmiaEvent::Kind::kPvcRun);
}

TEST(ArrhythmiaMonitor, IsolatedPvcsRaiseNothing) {
  std::vector<double> rr(30, 0.8);
  const auto beats = beats_from_rr(rr, 250.0);
  std::vector<cls::BeatLabel> labels(beats.size(), cls::BeatLabel::kNormal);
  labels[5] = cls::BeatLabel::kVentricular;
  labels[15] = cls::BeatLabel::kVentricular;
  EXPECT_TRUE(detect_events(beats, labels, {}, 250.0).empty());
}

TEST(ArrhythmiaMonitor, AfOnsetAndEndPaired) {
  std::vector<double> rr(64, 0.8);
  const auto beats = beats_from_rr(rr, 250.0);
  std::vector<cls::BeatLabel> labels(beats.size(), cls::BeatLabel::kNormal);
  std::vector<cls::AfWindow> windows(6);
  for (std::size_t i = 0; i < windows.size(); ++i) {
    windows[i].first_beat = i * 8;
    windows[i].last_beat = i * 8 + 24;
    windows[i].decided_af = (i >= 2 && i <= 3);
  }
  const auto events = detect_events(beats, labels, windows, 250.0);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, ArrhythmiaEvent::Kind::kAfOnset);
  EXPECT_EQ(events[1].kind, ArrhythmiaEvent::Kind::kAfEnd);
  EXPECT_LT(events[0].time_s, events[1].time_s);
}

TEST(ArrhythmiaMonitor, EventsSortedByTime) {
  std::vector<double> rr(64, 0.8);
  const auto beats = beats_from_rr(rr, 250.0);
  std::vector<cls::BeatLabel> labels(beats.size(), cls::BeatLabel::kNormal);
  for (std::size_t i = 40; i < 43; ++i) labels[i] = cls::BeatLabel::kVentricular;
  std::vector<cls::AfWindow> windows(2);
  windows[0].first_beat = 0;
  windows[0].decided_af = true;
  windows[1].first_beat = 8;
  windows[1].decided_af = false;
  const auto events = detect_events(beats, labels, windows, 250.0);
  ASSERT_EQ(events.size(), 3u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].time_s, events[i].time_s);
  }
}

}  // namespace
}  // namespace wbsn::core
