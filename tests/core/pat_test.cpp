#include "core/pat.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sig/ecg_synth.hpp"
#include "sig/ppg.hpp"

namespace wbsn::core {
namespace {

struct Scenario {
  sig::Record ecg;
  sig::PpgRecord ppg;
};

Scenario make_scenario(const sig::BpTrajectory& bp, int beats = 80, std::uint64_t seed = 1) {
  sig::SynthConfig cfg;
  cfg.episodes = {{sig::RhythmEpisode::Kind::kSinus, beats}};
  cfg.noise = sig::NoiseParams::preset(sig::NoiseLevel::kNone);
  sig::Rng rng(seed);
  Scenario s;
  s.ecg = synthesize_ecg(cfg, rng);
  sig::PpgConfig pcfg;
  pcfg.noise_rms = 0.005;
  s.ppg = synthesize_ppg(s.ecg, pcfg, bp, rng);
  return s;
}

TEST(PulseFeet, DetectedNearTruth) {
  const auto s = make_scenario(sig::BpTrajectory{});
  const auto feet = detect_pulse_feet(s.ppg.samples, s.ecg.r_peaks());
  std::size_t truth_idx = 0;
  int matched = 0;
  for (std::size_t i = 0; i < feet.size() && truth_idx < s.ppg.truth.foot_samples.size();
       ++i) {
    if (feet[i] < 0) continue;
    const auto err = std::abs(feet[i] - s.ppg.truth.foot_samples[truth_idx]);
    if (err <= 8) ++matched;  // Within 32 ms of the true foot.
    ++truth_idx;
  }
  EXPECT_GT(matched, static_cast<int>(0.9 * s.ppg.truth.foot_samples.size()));
}

TEST(Pat, TracksConstantPressure) {
  sig::BpTrajectory bp;
  bp.baseline_mmhg = 95.0;
  const auto s = make_scenario(bp);
  const auto series = compute_pat(s.ppg.samples, s.ecg.r_peaks());
  ASSERT_GT(series.pat_s.size(), 60u);
  // True PAT = PEP + L / pwv(95).
  const double truth = 0.06 + 0.65 / bp.pwv_for_map(95.0);
  for (double pat : series.pat_s) EXPECT_NEAR(pat, truth, 0.03);
}

TEST(Pat, HigherPressureShortensPat) {
  sig::BpTrajectory low;
  low.baseline_mmhg = 75.0;
  sig::BpTrajectory high;
  high.baseline_mmhg = 125.0;
  const auto s_low = make_scenario(low, 60, 2);
  const auto s_high = make_scenario(high, 60, 2);
  const auto pat_low = compute_pat(s_low.ppg.samples, s_low.ecg.r_peaks());
  const auto pat_high = compute_pat(s_high.ppg.samples, s_high.ecg.r_peaks());
  double mean_low = 0.0;
  double mean_high = 0.0;
  for (double v : pat_low.pat_s) mean_low += v;
  for (double v : pat_high.pat_s) mean_high += v;
  mean_low /= static_cast<double>(pat_low.pat_s.size());
  mean_high /= static_cast<double>(pat_high.pat_s.size());
  EXPECT_GT(mean_low, mean_high + 0.02);
}

TEST(BpEstimator, RecoversCalibrationLine) {
  BpEstimator estimator;
  // Synthetic calibration pairs from the generator's own law.
  sig::BpTrajectory bp;
  std::vector<double> pats;
  std::vector<double> maps;
  for (double map = 70.0; map <= 130.0; map += 5.0) {
    maps.push_back(map);
    pats.push_back(0.06 + 0.65 / bp.pwv_for_map(map));
  }
  estimator.calibrate(pats, maps);
  ASSERT_TRUE(estimator.calibrated());
  for (std::size_t i = 0; i < maps.size(); ++i) {
    EXPECT_NEAR(estimator.estimate_map(pats[i]), maps[i], 3.0);
  }
}

TEST(BpEstimator, EndToEndTracksExcursion) {
  // Pressure excursion mid-record; estimator calibrated on the flat part
  // must see the bump.
  sig::BpTrajectory bp;
  bp.baseline_mmhg = 90.0;
  bp.excursion_mmhg = 25.0;
  bp.excursion_t0_s = 30.0;
  bp.excursion_len_s = 20.0;
  const auto s = make_scenario(bp, 100, 3);
  const auto series = compute_pat(s.ppg.samples, s.ecg.r_peaks());
  ASSERT_GT(series.pat_s.size(), 80u);

  // Calibrate on truth pairs (as a cuff would provide).
  BpEstimator estimator;
  estimator.calibrate(s.ppg.truth.ptt_s, s.ppg.truth.map_mmhg);
  // The PAT series includes the PEP offset; recalibrate against PAT.
  std::vector<double> maps_at_beats;
  for (std::size_t k = 0; k < series.beat_index.size(); ++k) {
    maps_at_beats.push_back(s.ppg.truth.map_mmhg[series.beat_index[k]]);
  }
  BpEstimator pat_estimator;
  pat_estimator.calibrate(series.pat_s, maps_at_beats);
  ASSERT_TRUE(pat_estimator.calibrated());

  double peak_est = 0.0;
  double base_est = 1e9;
  for (std::size_t k = 0; k < series.pat_s.size(); ++k) {
    const double est = pat_estimator.estimate_map(series.pat_s[k]);
    peak_est = std::max(peak_est, est);
    base_est = std::min(base_est, est);
  }
  EXPECT_GT(peak_est, 105.0);  // Sees the excursion...
  EXPECT_LT(base_est, 95.0);   // ...and the baseline.
}

TEST(BpEstimator, RefusesDegenerateCalibration) {
  BpEstimator estimator;
  const std::vector<double> one = {0.25};
  estimator.calibrate(one, one);
  EXPECT_FALSE(estimator.calibrated());
}

}  // namespace
}  // namespace wbsn::core
