#include "core/node.hpp"

#include <gtest/gtest.h>

#include "sig/ecg_synth.hpp"

namespace wbsn::core {
namespace {

/// Slices a record into node-sized windows.
std::vector<std::vector<std::vector<double>>> windows_of(const sig::Record& rec,
                                                         std::size_t window) {
  std::vector<std::vector<std::vector<double>>> out;
  const std::size_t count = rec.num_samples() / window;
  for (std::size_t w = 0; w < count; ++w) {
    std::vector<std::vector<double>> leads;
    for (const auto& lead : rec.leads) {
      leads.emplace_back(lead.begin() + static_cast<long>(w * window),
                         lead.begin() + static_cast<long>((w + 1) * window));
    }
    out.push_back(std::move(leads));
  }
  return out;
}

sig::Record test_record(int beats = 40, std::uint64_t seed = 1) {
  sig::SynthConfig cfg;
  cfg.episodes = {{sig::RhythmEpisode::Kind::kSinus, beats}};
  cfg.noise = sig::NoiseParams::preset(sig::NoiseLevel::kLow);
  sig::Rng rng(seed);
  return synthesize_ecg(cfg, rng);
}

TEST(Node, RawStreamingPayloadSize) {
  NodeConfig cfg;
  cfg.mode = OperatingMode::kRawStreaming;
  WbsnNode node(cfg);
  const auto rec = test_record();
  const auto windows = windows_of(rec, cfg.window_samples);
  ASSERT_FALSE(windows.empty());
  const auto out = node.process_window(windows[0]);
  // 512 samples x 3 leads x 1.5 bytes.
  EXPECT_EQ(out.tx_payload_bytes, raw_payload_bytes(512, 3));
  EXPECT_EQ(out.tx_payload_bytes, 2304u);
  EXPECT_EQ(out.processing_ops.total(), 0u);  // No on-node DSP.
}

TEST(Node, CsModesShrinkPayloadByCr) {
  NodeConfig cfg;
  cfg.mode = OperatingMode::kCompressedSingle;
  cfg.cs_cr_percent = 60.0;
  WbsnNode node(cfg);
  const auto rec = test_record();
  const auto windows = windows_of(rec, cfg.window_samples);
  const auto out = node.process_window(windows[0]);
  // m = 0.4 * 512 ~ 205 measurements x 3 leads x 14 bits packed.
  EXPECT_NEAR(static_cast<double>(out.tx_payload_bytes), 0.4 * 512 * 3 * 14.0 / 8.0, 16.0);
  EXPECT_GT(out.processing_ops.add, 0u);
  EXPECT_EQ(out.processing_ops.mul, 0u);  // Sparse binary: adds only.
}

TEST(Node, AbstractionLadderMonotone) {
  // Figure 1: each higher abstraction level transmits fewer bytes.
  const auto rec = test_record(60);
  std::vector<std::uint32_t> bytes;
  for (OperatingMode mode : {OperatingMode::kRawStreaming, OperatingMode::kCompressedSingle,
                             OperatingMode::kDelineation}) {
    NodeConfig cfg;
    cfg.mode = mode;
    WbsnNode node(cfg);
    const auto windows = windows_of(rec, cfg.window_samples);
    std::uint64_t total = 0;
    for (const auto& w : windows) total += node.process_window(w).tx_payload_bytes;
    bytes.push_back(static_cast<std::uint32_t>(total));
  }
  EXPECT_GT(bytes[0], bytes[1]);
  EXPECT_GT(bytes[1], bytes[2]);
}

TEST(Node, DelineationModeProducesBeats) {
  NodeConfig cfg;
  cfg.mode = OperatingMode::kDelineation;
  WbsnNode node(cfg);
  const auto rec = test_record(50);
  const auto windows = windows_of(rec, cfg.window_samples);
  std::size_t beats = 0;
  for (const auto& w : windows) beats += node.process_window(w).beats.size();
  // ~50 beats spread over the windows (edge beats may drop).
  EXPECT_GT(beats, 35u);
  EXPECT_LE(beats, 55u);
}

TEST(Node, EnergyFallsWithAbstractionLevel) {
  // The core thesis: on-node intelligence cuts total energy.
  const auto rec = test_record(60);
  double prev_total = 1e18;
  for (OperatingMode mode : {OperatingMode::kRawStreaming, OperatingMode::kCompressedSingle,
                             OperatingMode::kDelineation}) {
    NodeConfig cfg;
    cfg.mode = mode;
    cfg.cs_cr_percent = 60.0;
    WbsnNode node(cfg);
    const auto windows = windows_of(rec, cfg.window_samples);
    double total = 0.0;
    for (const auto& w : windows) total += node.process_window(w).energy.total_j();
    EXPECT_LT(total, prev_total) << to_string(mode);
    prev_total = total;
  }
}

TEST(Node, RadioShareShrinksComputeShareGrows) {
  const auto rec = test_record(60);
  const auto share = [&](OperatingMode mode) {
    NodeConfig cfg;
    cfg.mode = mode;
    WbsnNode node(cfg);
    const auto windows = windows_of(rec, cfg.window_samples);
    energy::EnergyBreakdown acc;
    for (const auto& w : windows) {
      const auto e = node.process_window(w).energy;
      acc.radio_j += e.radio_j;
      acc.sampling_j += e.sampling_j;
      acc.os_j += e.os_j;
      acc.computation_j += e.computation_j;
    }
    return std::pair{acc.radio_j / acc.total_j(), acc.computation_j / acc.total_j()};
  };
  const auto [raw_radio, raw_comp] = share(OperatingMode::kRawStreaming);
  const auto [del_radio, del_comp] = share(OperatingMode::kDelineation);
  EXPECT_GT(raw_radio, del_radio);
  EXPECT_LT(raw_comp, del_comp);
}

TEST(Node, ModeNamesAreStable) {
  EXPECT_EQ(to_string(OperatingMode::kRawStreaming), "raw-streaming");
  EXPECT_EQ(to_string(OperatingMode::kAfAlarm), "af-alarm");
}

}  // namespace
}  // namespace wbsn::core
