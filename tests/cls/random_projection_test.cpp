#include "cls/random_projection.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace wbsn::cls {
namespace {

TEST(PackedTernary, EntriesRoundTrip) {
  sig::Rng rng(1);
  const auto m = PackedTernaryMatrix::make_achlioptas(8, 100, 3.0, rng);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      const int e = m.entry(r, c);
      EXPECT_TRUE(e == -1 || e == 0 || e == 1);
    }
  }
}

TEST(PackedTernary, DensityMatchesSparsityParameter) {
  sig::Rng rng(2);
  for (double s : {1.0, 3.0, 8.0}) {
    const auto m = PackedTernaryMatrix::make_achlioptas(32, 256, s, rng);
    EXPECT_NEAR(m.density(), 1.0 / s, 0.03) << "s=" << s;
  }
}

TEST(PackedTernary, StorageIsTwoBitsPerEntry) {
  sig::Rng rng(3);
  const auto m = PackedTernaryMatrix::make_achlioptas(16, 180, 3.0, rng);
  // 180 cols -> 6 words of 32 entries per row -> 16*6*8 = 768 bytes.
  EXPECT_EQ(m.storage_bytes(), 768u);
  // Versus 16*180*8 = 23 kB as doubles: 30x smaller (paper Section IV-A).
  EXPECT_LE(m.storage_bytes() * 30, 16 * 180 * sizeof(double));
}

TEST(PackedTernary, ProjectMatchesNaiveMultiply) {
  sig::Rng rng(4);
  const auto m = PackedTernaryMatrix::make_achlioptas(12, 90, 3.0, rng);
  std::vector<std::int32_t> x(90);
  for (auto& v : x) v = static_cast<std::int32_t>(rng.uniform_int(-1000, 1000));
  const auto y = m.project(x);
  ASSERT_EQ(y.size(), 12u);
  for (std::size_t r = 0; r < 12; ++r) {
    std::int64_t want = 0;
    for (std::size_t c = 0; c < 90; ++c) want += m.entry(r, c) * x[c];
    EXPECT_EQ(y[r], want) << r;
  }
}

TEST(PackedTernary, ProjectUsesNoMultiplies) {
  sig::Rng rng(5);
  const auto m = PackedTernaryMatrix::make_achlioptas(16, 128, 3.0, rng);
  std::vector<std::int32_t> x(128, 7);
  dsp::OpCount ops;
  m.project(x, &ops);
  EXPECT_EQ(ops.mul, 0u);
  EXPECT_EQ(ops.div, 0u);
  EXPECT_GT(ops.add, 0u);
}

TEST(PackedTernary, SparserMatrixDoesLessWork) {
  sig::Rng rng_a(6);
  sig::Rng rng_b(6);
  const auto dense = PackedTernaryMatrix::make_achlioptas(16, 512, 1.0, rng_a);
  const auto sparse = PackedTernaryMatrix::make_achlioptas(16, 512, 8.0, rng_b);
  std::vector<std::int32_t> x(512, 3);
  dsp::OpCount ops_dense;
  dsp::OpCount ops_sparse;
  dense.project(x, &ops_dense);
  sparse.project(x, &ops_sparse);
  EXPECT_LT(4 * ops_sparse.add, ops_dense.add);
}

TEST(PackedTernary, JohnsonLindenstraussDistancePreservation) {
  // Pairwise distances between random vectors survive projection within a
  // moderate distortion after 1/sqrt(k * density-scale) normalization.  We
  // check the *ratio* statistics rather than a single pair.
  sig::Rng rng(7);
  const std::size_t d = 512;
  const std::size_t k = 64;
  const double s = 3.0;
  const auto m = PackedTernaryMatrix::make_achlioptas(k, d, s, rng);
  // Entry variance = 1/s, so E||Mx||^2 = (k/s)||x||^2.
  const double expected_gain = static_cast<double>(k) / s;

  int within = 0;
  const int trials = 50;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<std::int32_t> x(d);
    for (auto& v : x) v = static_cast<std::int32_t>(rng.uniform_int(-100, 100));
    const auto y = m.project(x);
    double nx = 0.0;
    double ny = 0.0;
    for (auto v : x) nx += static_cast<double>(v) * v;
    for (auto v : y) ny += static_cast<double>(v) * v;
    const double ratio = ny / (expected_gain * nx);
    if (ratio > 0.6 && ratio < 1.5) ++within;
  }
  EXPECT_GE(within, 45);  // >= 90 % of pairs within the distortion band.
}

TEST(PackedTernary, DeterministicForSeed) {
  sig::Rng a(8);
  sig::Rng b(8);
  const auto ma = PackedTernaryMatrix::make_achlioptas(8, 64, 3.0, a);
  const auto mb = PackedTernaryMatrix::make_achlioptas(8, 64, 3.0, b);
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 0; c < 64; ++c) EXPECT_EQ(ma.entry(r, c), mb.entry(r, c));
  }
}

}  // namespace
}  // namespace wbsn::cls
