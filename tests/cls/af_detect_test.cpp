#include "cls/af_detect.hpp"

#include <gtest/gtest.h>

#include "delin/pipeline.hpp"
#include "sig/adc.hpp"
#include "sig/dataset.hpp"

namespace wbsn::cls {
namespace {

/// Runs the delineation pipeline on a record and copies truth labels onto
/// the detected beats (nearest-R matching), giving the AF detector inputs
/// with realistic detected P waves plus evaluable truth.
std::vector<sig::BeatAnnotation> delineate_with_truth(const sig::Record& rec) {
  const auto leads = sig::quantize_leads(rec.leads, sig::AdcConfig{});
  delin::PipelineConfig cfg;
  cfg.fs = rec.fs;
  auto result = delin::run_delineation_pipeline(leads, cfg);
  for (auto& det : result.beats) {
    const sig::BeatAnnotation* nearest = nullptr;
    std::int64_t best = 1 << 30;
    for (const auto& truth : rec.beats) {
      const std::int64_t d = std::abs(truth.r_peak - det.r_peak);
      if (d < best) {
        best = d;
        nearest = &truth;
      }
    }
    if (nearest != nullptr && best < static_cast<std::int64_t>(0.15 * rec.fs)) {
      det.label = nearest->label;
    }
  }
  return result.beats;
}

class AfDetectorFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sig::DatasetSpec train_spec;
    train_spec.num_records = 8;
    train_spec.beats_per_record = 160;
    train_spec.noise = sig::NoiseLevel::kLow;
    train_spec.seed = 1000;
    const auto train_records = sig::make_af_dataset(train_spec);
    auto* training = new std::vector<std::vector<sig::BeatAnnotation>>();
    for (const auto& rec : train_records) training->push_back(delineate_with_truth(rec));
    detector_ = new AfDetector();
    detector_->train(*training, 250.0);
    delete training;
  }
  static void TearDownTestSuite() {
    delete detector_;
    detector_ = nullptr;
  }

  static AfDetector* detector_;
};

AfDetector* AfDetectorFixture::detector_ = nullptr;

TEST(AfFeatures, SinusVsAfSeparation) {
  sig::DatasetSpec spec;
  spec.num_records = 2;
  spec.beats_per_record = 120;
  spec.noise = sig::NoiseLevel::kNone;
  const auto sinus = sig::make_sinus_dataset(spec);
  const auto af = sig::make_af_dataset(spec);
  const auto f_sinus = compute_af_features(sinus[0].beats, sinus[0].fs, 8);
  // Pure-AF window: take beats from the AF episode only.
  std::vector<sig::BeatAnnotation> af_beats;
  for (const auto& b : af[0].beats) {
    if (b.label == sig::BeatClass::kAfib) af_beats.push_back(b);
  }
  const auto f_af = compute_af_features(af_beats, af[0].fs, 8);
  EXPECT_GT(f_af.normalized_rmssd, 3.0 * f_sinus.normalized_rmssd);
  EXPECT_GT(f_af.rr_entropy, f_sinus.rr_entropy);
  // Truth annotations carry P for sinus, none for AF.
  EXPECT_GT(f_sinus.p_wave_rate, 0.95);
  EXPECT_LT(f_af.p_wave_rate, 0.05);
}

TEST(AfFeatures, TooFewBeatsIsSafe) {
  const std::vector<sig::BeatAnnotation> two(2);
  const auto f = compute_af_features(two, 250.0, 8);
  EXPECT_EQ(f.normalized_rmssd, 0.0);
}

TEST_F(AfDetectorFixture, MeetsPaperOperatingPoint) {
  // The Section V headline: 96 % sensitivity, 93 % specificity for the
  // embedded AF detector.  Evaluate on held-out records.
  sig::DatasetSpec spec;
  spec.num_records = 10;
  spec.beats_per_record = 160;
  spec.noise = sig::NoiseLevel::kLow;
  spec.seed = 2000;
  const auto records = sig::make_af_dataset(spec);
  AfReport report;
  for (const auto& rec : records) {
    const auto beats = delineate_with_truth(rec);
    for (const auto& w : detector_->detect(beats, rec.fs)) report.add(w);
  }
  EXPECT_GT(report.sensitivity(), 0.90);
  EXPECT_GT(report.specificity(), 0.90);
}

TEST_F(AfDetectorFixture, AllSinusRecordProducesNoAlarms) {
  sig::DatasetSpec spec;
  spec.num_records = 3;
  spec.beats_per_record = 150;
  spec.noise = sig::NoiseLevel::kLow;
  spec.seed = 3000;
  const auto records = sig::make_sinus_dataset(spec);
  int alarms = 0;
  int windows = 0;
  for (const auto& rec : records) {
    const auto beats = delineate_with_truth(rec);
    for (const auto& w : detector_->detect(beats, rec.fs)) {
      ++windows;
      alarms += w.decided_af;
    }
  }
  ASSERT_GT(windows, 20);
  EXPECT_LT(static_cast<double>(alarms) / windows, 0.10);
}

TEST_F(AfDetectorFixture, WindowsCoverRecord) {
  sig::DatasetSpec spec;
  spec.num_records = 1;
  spec.beats_per_record = 120;
  spec.seed = 4000;
  const auto records = sig::make_af_dataset(spec);
  const auto beats = delineate_with_truth(records[0]);
  const auto windows = detector_->detect(beats, records[0].fs);
  ASSERT_FALSE(windows.empty());
  EXPECT_EQ(windows.front().first_beat, 0u);
  const auto& cfg = detector_->config();
  for (std::size_t i = 1; i < windows.size(); ++i) {
    EXPECT_EQ(windows[i].first_beat - windows[i - 1].first_beat,
              static_cast<std::size_t>(cfg.window_stride));
  }
}

TEST_F(AfDetectorFixture, OpsAccountedWhenRequested) {
  sig::DatasetSpec spec;
  spec.num_records = 1;
  spec.beats_per_record = 80;
  spec.seed = 5000;
  const auto records = sig::make_af_dataset(spec);
  const auto beats = delineate_with_truth(records[0]);
  dsp::OpCount ops;
  detector_->detect(beats, records[0].fs, &ops);
  EXPECT_GT(ops.total(), 0u);
}

// --- Priority tagging hook (host fabric integration) -------------------------

TEST(AfUrgentSpans, CoversOnlyAfPositiveWindowsAndMergesOverlaps) {
  std::vector<sig::BeatAnnotation> beats(20);
  for (std::size_t i = 0; i < beats.size(); ++i) {
    beats[i].r_peak = static_cast<std::int64_t>(100 * i);
  }
  // Three decision windows of 8 beats at stride 4: [0,8) AF, [4,12) AF
  // (overlaps the first), [8,16) clean, [12,20) AF (disjoint).
  std::vector<AfWindow> windows(4);
  windows[0] = {.first_beat = 0, .last_beat = 8, .features = {}, .decided_af = true};
  windows[1] = {.first_beat = 4, .last_beat = 12, .features = {}, .decided_af = true};
  windows[2] = {.first_beat = 8, .last_beat = 16, .features = {}, .decided_af = false};
  windows[3] = {.first_beat = 12, .last_beat = 20, .features = {}, .decided_af = true};

  const auto spans = af_urgent_spans(windows, beats);
  ASSERT_EQ(spans.size(), 2u) << "overlapping AF windows must merge";
  EXPECT_EQ(spans[0].begin, 0);
  EXPECT_EQ(spans[0].end, 1101) << "one past the last beat's R peak";
  EXPECT_EQ(spans[1].begin, 1200);
  EXPECT_EQ(spans[1].end, 1901);
  EXPECT_TRUE(spans[0].overlaps(500, 600));
  EXPECT_FALSE(spans[0].overlaps(1101, 1200));
}

TEST(AfUrgentSpans, EmptyWithoutAfDecisionsOrOutOfRangeWindows) {
  std::vector<sig::BeatAnnotation> beats(10);
  for (std::size_t i = 0; i < beats.size(); ++i) {
    beats[i].r_peak = static_cast<std::int64_t>(50 * i);
  }
  std::vector<AfWindow> windows(2);
  windows[0] = {.first_beat = 0, .last_beat = 8, .features = {}, .decided_af = false};
  windows[1] = {.first_beat = 8, .last_beat = 99, .features = {}, .decided_af = true};

  EXPECT_TRUE(af_urgent_spans(windows, beats).empty())
      << "clean windows and windows past the beat list produce no spans";
  EXPECT_TRUE(af_urgent_spans({}, beats).empty());
}

TEST_F(AfDetectorFixture, UrgentSpansFromDetectorCoverTheAfEpisode) {
  // End-to-end priority hook: delineate an AF record, detect, and derive
  // the urgent spans a node would ship with its compressed windows.
  sig::DatasetSpec spec;
  spec.num_records = 1;
  spec.beats_per_record = 120;
  spec.seed = 4000;
  const auto records = sig::make_af_dataset(spec);
  const auto beats = delineate_with_truth(records[0]);
  const auto windows = detector_->detect(beats, records[0].fs);
  ASSERT_FALSE(windows.empty());

  bool any_af = false;
  for (const auto& w : windows) any_af |= w.decided_af;
  ASSERT_TRUE(any_af) << "detector must fire somewhere on an AF record";

  const auto spans = af_urgent_spans(windows, beats);
  ASSERT_FALSE(spans.empty());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_LT(spans[i].begin, spans[i].end);
    EXPECT_GE(spans[i].begin, beats.front().r_peak);
    EXPECT_LE(spans[i].end, beats.back().r_peak + 1);
    if (i > 0) {
      EXPECT_GT(spans[i].begin, spans[i - 1].end) << "spans must be disjoint";
    }
  }
  // Every AF-positive decision window's beats are covered by some span.
  for (const auto& w : windows) {
    if (!w.decided_af) continue;
    const std::int64_t lo = beats[w.first_beat].r_peak;
    const std::int64_t hi = beats[w.last_beat - 1].r_peak + 1;
    bool covered = false;
    for (const auto& span : spans) covered |= span.begin <= lo && hi <= span.end;
    EXPECT_TRUE(covered) << "AF window starting at beat " << w.first_beat;
  }
}

}  // namespace
}  // namespace wbsn::cls
