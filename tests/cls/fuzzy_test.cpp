#include "cls/fuzzy.hpp"

#include <gtest/gtest.h>

#include "sig/rng.hpp"

namespace wbsn::cls {
namespace {

/// Two well-separated 2-D Gaussian blobs.
std::vector<Sample> two_blobs(int per_class, sig::Rng& rng) {
  std::vector<Sample> samples;
  for (int i = 0; i < per_class; ++i) {
    samples.push_back({{rng.normal(0.0, 0.5), rng.normal(0.0, 0.5)}, 0});
    samples.push_back({{rng.normal(3.0, 0.5), rng.normal(3.0, 0.5)}, 1});
  }
  return samples;
}

TEST(Fuzzy, LearnsBlobMeans) {
  sig::Rng rng(1);
  const auto samples = two_blobs(500, rng);
  FuzzyClassifier clf;
  clf.train(samples, 2);
  EXPECT_NEAR(clf.mu(0, 0), 0.0, 0.1);
  EXPECT_NEAR(clf.mu(1, 0), 3.0, 0.1);
  EXPECT_NEAR(clf.sigma(0, 1), 0.5, 0.1);
}

TEST(Fuzzy, SeparatesBlobsPerfectly) {
  sig::Rng rng(2);
  const auto train_set = two_blobs(300, rng);
  FuzzyClassifier clf;
  clf.train(train_set, 2);
  const auto test_set = two_blobs(200, rng);
  int correct = 0;
  for (const auto& s : test_set) correct += clf.classify(s.features) == s.label;
  EXPECT_GT(static_cast<double>(correct) / test_set.size(), 0.99);
}

TEST(Fuzzy, MembershipHighestAtClassMean) {
  sig::Rng rng(3);
  FuzzyClassifier clf;
  clf.train(two_blobs(300, rng), 2);
  const std::vector<double> at_mean0 = {0.0, 0.0};
  const auto scores = clf.memberships(at_mean0);
  EXPECT_GT(scores[0], 0.9);
  EXPECT_LT(scores[1], 0.01);
}

class TNormTest : public ::testing::TestWithParam<TNorm> {};

TEST_P(TNormTest, LinearizedMatchesExactOnSeparableData) {
  sig::Rng rng(4);
  FuzzyConfig cfg;
  cfg.tnorm = GetParam();
  FuzzyClassifier clf(cfg);
  clf.train(two_blobs(300, rng), 2);
  const auto test_set = two_blobs(300, rng);
  int agree = 0;
  for (const auto& s : test_set) {
    agree += clf.classify(s.features) == clf.classify_linearized(s.features);
  }
  // Section IV-A: 4-segment linearization is close to optimal.
  EXPECT_GT(static_cast<double>(agree) / test_set.size(), 0.98);
}

TEST_P(TNormTest, HarderOverlappingBlobsStillLearned) {
  sig::Rng rng(5);
  std::vector<Sample> samples;
  for (int i = 0; i < 600; ++i) {
    samples.push_back({{rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)}, 0});
    samples.push_back({{rng.normal(1.6, 1.0), rng.normal(1.6, 1.0)}, 1});
  }
  FuzzyConfig cfg;
  cfg.tnorm = GetParam();
  FuzzyClassifier clf(cfg);
  clf.train(samples, 2);
  int correct = 0;
  for (const auto& s : samples) correct += clf.classify(s.features) == s.label;
  // Bayes-optimal here is ~87 %; demand a decent share of it.
  EXPECT_GT(static_cast<double>(correct) / samples.size(), 0.75);
}

INSTANTIATE_TEST_SUITE_P(Norms, TNormTest,
                         ::testing::Values(TNorm::kProduct, TNorm::kMinimum),
                         [](const auto& info) {
                           return info.param == TNorm::kProduct ? "Product" : "Minimum";
                         });

TEST(Fuzzy, ThreeClasses) {
  sig::Rng rng(6);
  std::vector<Sample> samples;
  for (int i = 0; i < 300; ++i) {
    samples.push_back({{rng.normal(0.0, 0.4)}, 0});
    samples.push_back({{rng.normal(2.0, 0.4)}, 1});
    samples.push_back({{rng.normal(4.0, 0.4)}, 2});
  }
  FuzzyClassifier clf;
  clf.train(samples, 3);
  EXPECT_EQ(clf.classify(std::vector<double>{0.1}), 0);
  EXPECT_EQ(clf.classify(std::vector<double>{1.9}), 1);
  EXPECT_EQ(clf.classify(std::vector<double>{4.2}), 2);
}

TEST(Fuzzy, SigmaFloorPreventsDegenerateMemberships) {
  // All samples of class 0 identical: sigma would be 0 without the floor.
  std::vector<Sample> samples;
  for (int i = 0; i < 50; ++i) {
    samples.push_back({{1.0}, 0});
    samples.push_back({{2.0 + 0.1 * (i % 5)}, 1});
  }
  FuzzyClassifier clf;
  clf.train(samples, 2);
  EXPECT_GE(clf.sigma(0, 0), 1e-3);
  EXPECT_EQ(clf.classify(std::vector<double>{1.0}), 0);
}

TEST(Fuzzy, LinearizedReportsOps) {
  sig::Rng rng(7);
  FuzzyClassifier clf;
  clf.train(two_blobs(100, rng), 2);
  dsp::OpCount ops;
  clf.classify_linearized(std::vector<double>{1.0, 1.0}, &ops);
  EXPECT_GT(ops.total(), 0u);
  // 2 classes x 2 features: cost stays tiny.
  EXPECT_LT(ops.total(), 100u);
}

}  // namespace
}  // namespace wbsn::cls
