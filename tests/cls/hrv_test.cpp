#include "cls/hrv.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "sig/hrv.hpp"
#include "sig/rng.hpp"

namespace wbsn::cls {
namespace {

TEST(HrvTime, ConstantRrHasZeroVariability) {
  const std::vector<double> rr(100, 0.8);
  const auto m = compute_time_domain(rr);
  EXPECT_NEAR(m.mean_rr_s, 0.8, 1e-12);
  EXPECT_NEAR(m.sdnn_ms, 0.0, 1e-9);
  EXPECT_NEAR(m.rmssd_ms, 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(m.pnn50, 0.0);
  EXPECT_NEAR(m.mean_hr_bpm, 75.0, 1e-9);
}

TEST(HrvTime, KnownAlternatingSeries) {
  // RR alternating 0.8 / 0.9: every successive difference is 100 ms.
  std::vector<double> rr;
  for (int i = 0; i < 100; ++i) rr.push_back(i % 2 == 0 ? 0.8 : 0.9);
  const auto m = compute_time_domain(rr);
  EXPECT_NEAR(m.rmssd_ms, 100.0, 1e-6);
  EXPECT_DOUBLE_EQ(m.pnn50, 1.0);  // All diffs exceed 50 ms.
  EXPECT_NEAR(m.sdnn_ms, 50.0, 1.0);
}

TEST(HrvTime, MatchesGeneratorStatistics) {
  sig::Rng rng(1);
  sig::SinusRhythmParams p;
  p.mean_hr_bpm = 72.0;
  const auto rr = sig::generate_sinus_rr(p, 600, rng);
  const auto m = compute_time_domain(rr);
  EXPECT_NEAR(m.mean_hr_bpm, 72.0, 2.5);
  EXPECT_GT(m.sdnn_ms, 15.0);
  EXPECT_LT(m.sdnn_ms, 120.0);
}

TEST(HrvTime, AfRaisesRmssdSharply) {
  sig::Rng rng_a(2);
  sig::Rng rng_b(2);
  const auto sinus = sig::generate_sinus_rr(sig::SinusRhythmParams{}, 400, rng_a);
  const auto af = sig::generate_af_rr(sig::AfRhythmParams{}, 400, rng_b);
  const auto ms = compute_time_domain(sinus);
  const auto ma = compute_time_domain(af);
  EXPECT_GT(ma.rmssd_ms, 3.0 * ms.rmssd_ms);
}

TEST(Tachogram, UniformSpacing) {
  const std::vector<double> rr(50, 0.5);
  const auto tacho = resample_tachogram(rr, 4.0);
  // 50 beats x 0.5 s = 25 s of signal at 4 Hz -> ~97 samples (excluding
  // the lead-in before the first beat).
  EXPECT_NEAR(static_cast<double>(tacho.size()), 97.0, 3.0);
  for (double v : tacho) EXPECT_NEAR(v, 0.5, 1e-9);
}

TEST(Tachogram, TooShortSeries) {
  EXPECT_TRUE(resample_tachogram(std::vector<double>{0.8}, 4.0).empty());
}

TEST(HrvFreq, RsaShowsUpInHfBand) {
  // RR modulated at 0.3 Hz (breathing) -> HF-dominant.
  std::vector<double> rr;
  double t = 0.0;
  for (int i = 0; i < 600; ++i) {
    const double interval =
        0.8 + 0.05 * std::sin(2.0 * std::numbers::pi * 0.3 * t);
    rr.push_back(interval);
    t += interval;
  }
  const auto f = compute_frequency_domain(rr);
  EXPECT_GT(f.hf_power, 5.0 * f.lf_power);
  EXPECT_LT(f.lf_hf_ratio, 0.5);
}

TEST(HrvFreq, MayerWaveShowsUpInLfBand) {
  std::vector<double> rr;
  double t = 0.0;
  for (int i = 0; i < 600; ++i) {
    const double interval =
        0.8 + 0.05 * std::sin(2.0 * std::numbers::pi * 0.09 * t);
    rr.push_back(interval);
    t += interval;
  }
  const auto f = compute_frequency_domain(rr);
  EXPECT_GT(f.lf_power, 5.0 * f.hf_power);
  EXPECT_GT(f.lf_hf_ratio, 2.0);
}

TEST(HrvFreq, ShortSeriesReturnsZeros) {
  const std::vector<double> rr(10, 0.8);
  const auto f = compute_frequency_domain(rr);
  EXPECT_DOUBLE_EQ(f.lf_power, 0.0);
  EXPECT_DOUBLE_EQ(f.hf_power, 0.0);
}

}  // namespace
}  // namespace wbsn::cls
