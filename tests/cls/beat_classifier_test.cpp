#include "cls/beat_classifier.hpp"

#include <gtest/gtest.h>

#include "sig/adc.hpp"
#include "sig/dataset.hpp"
#include "sig/ecg_synth.hpp"

namespace wbsn::cls {
namespace {

struct Prepared {
  std::vector<std::vector<std::int32_t>> signals;
  std::vector<sig::Record> records;
};

Prepared prepare(int num_records, std::uint64_t seed) {
  sig::DatasetSpec spec;
  spec.num_records = num_records;
  spec.beats_per_record = 150;
  spec.noise = sig::NoiseLevel::kLow;
  spec.pvc_probability = 0.10;
  spec.apc_probability = 0.08;
  spec.seed = seed;
  Prepared p;
  p.records = make_arrhythmia_dataset(spec);
  for (const auto& rec : p.records) {
    p.signals.push_back(sig::quantize(rec.leads[0], sig::AdcConfig{}));
  }
  return p;
}

std::vector<BeatClassifier::TrainingRecord> as_training(const Prepared& p) {
  std::vector<BeatClassifier::TrainingRecord> out;
  for (std::size_t i = 0; i < p.records.size(); ++i) {
    out.push_back({p.signals[i], p.records[i].beats});
  }
  return out;
}

ClassificationReport evaluate(const BeatClassifier& clf, const Prepared& p,
                              bool linearized) {
  ClassificationReport report;
  report.confusion.assign(3, std::vector<int>(3, 0));
  for (std::size_t i = 0; i < p.records.size(); ++i) {
    const auto& beats = p.records[i].beats;
    double rr_mean = 0.8;
    for (std::size_t b = 1; b + 1 < beats.size(); ++b) {
      const double rr_prev =
          static_cast<double>(beats[b].r_peak - beats[b - 1].r_peak) / p.records[i].fs;
      const double rr_next =
          static_cast<double>(beats[b + 1].r_peak - beats[b].r_peak) / p.records[i].fs;
      rr_mean += 0.125 * (rr_prev - rr_mean);
      const BeatLabel got =
          linearized ? clf.classify_linearized(p.signals[i], beats[b].r_peak, rr_prev,
                                               rr_next, rr_mean)
                     : clf.classify(p.signals[i], beats[b].r_peak, rr_prev, rr_next, rr_mean);
      const BeatLabel want = to_beat_label(beats[b].label);
      report.confusion[static_cast<std::size_t>(want)][static_cast<std::size_t>(got)]++;
    }
  }
  return report;
}

class BeatClassifierFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    train_data_ = new Prepared(prepare(6, 100));
    test_data_ = new Prepared(prepare(4, 200));
    clf_ = new BeatClassifier();
    const auto training = as_training(*train_data_);
    clf_->train(training);
  }
  static void TearDownTestSuite() {
    delete train_data_;
    delete test_data_;
    delete clf_;
    train_data_ = nullptr;
    test_data_ = nullptr;
    clf_ = nullptr;
  }

  static Prepared* train_data_;
  static Prepared* test_data_;
  static BeatClassifier* clf_;
};

Prepared* BeatClassifierFixture::train_data_ = nullptr;
Prepared* BeatClassifierFixture::test_data_ = nullptr;
BeatClassifier* BeatClassifierFixture::clf_ = nullptr;

TEST_F(BeatClassifierFixture, HighAccuracyOnHeldOutRecords) {
  const auto report = evaluate(*clf_, *test_data_, false);
  EXPECT_GT(report.accuracy(), 0.93);
}

TEST_F(BeatClassifierFixture, PvcSensitivityAndSpecificity) {
  const auto report = evaluate(*clf_, *test_data_, false);
  const int v = static_cast<int>(BeatLabel::kVentricular);
  EXPECT_GT(report.sensitivity(v), 0.90);
  EXPECT_GT(report.specificity(v), 0.95);
}

TEST_F(BeatClassifierFixture, LinearizedCloseToExact) {
  const auto exact = evaluate(*clf_, *test_data_, false);
  const auto lin = evaluate(*clf_, *test_data_, true);
  // Section IV-A: four-segment linearization is close to optimal.
  EXPECT_GT(lin.accuracy(), exact.accuracy() - 0.02);
}

TEST_F(BeatClassifierFixture, FeatureExtractionRejectsEdgeBeats) {
  const auto& sigl = test_data_->signals[0];
  EXPECT_TRUE(clf_->extract_features(sigl, 5, 0.8, 0.8, 0.8).empty());
  EXPECT_TRUE(
      clf_->extract_features(sigl, static_cast<std::int64_t>(sigl.size()) - 5, 0.8, 0.8, 0.8)
          .empty());
  EXPECT_FALSE(clf_->extract_features(sigl, 1000, 0.8, 0.8, 0.8).empty());
}

TEST_F(BeatClassifierFixture, FeatureVectorLayout) {
  const auto& sigl = test_data_->signals[0];
  const auto features = clf_->extract_features(sigl, 1000, 0.7, 0.9, 0.8);
  ASSERT_EQ(features.size(), clf_->config().projected_dims + 2);
  EXPECT_NEAR(features[features.size() - 2], 0.7 / 0.8, 1e-9);
  EXPECT_NEAR(features[features.size() - 1], 0.9 / 0.8, 1e-9);
}

TEST_F(BeatClassifierFixture, OpCountIsSmall) {
  // The classifier must stay a light add-on next to filtering (Fig. 7's
  // RP-CLASS bar is the cheapest kernel).
  const auto& sigl = test_data_->signals[0];
  dsp::OpCount ops;
  clf_->classify_linearized(sigl, 1000, 0.8, 0.8, 0.8, &ops);
  EXPECT_EQ(ops.mul + ops.div, ops.mul + ops.div);
  EXPECT_LT(ops.total(), 3000u);  // vs ~100k+ for per-sample filters.
}

TEST(BeatLabelMap, AamiMapping) {
  EXPECT_EQ(to_beat_label(sig::BeatClass::kNormal), BeatLabel::kNormal);
  EXPECT_EQ(to_beat_label(sig::BeatClass::kAfib), BeatLabel::kNormal);
  EXPECT_EQ(to_beat_label(sig::BeatClass::kPvc), BeatLabel::kVentricular);
  EXPECT_EQ(to_beat_label(sig::BeatClass::kApc), BeatLabel::kSupraventricular);
}

}  // namespace
}  // namespace wbsn::cls
