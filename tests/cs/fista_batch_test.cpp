// fista_solve_batch: multi-window batched solves must be bit-identical to
// solo fista_reconstruct per window — batching is an execution-layout
// optimization only.  (Cross-backend parity is covered by the kern parity
// suite; this suite pins the batch semantics on the active backend.)
#include "cs/fista.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "cs/sensing_matrix.hpp"
#include "dsp/wavelet.hpp"
#include "sig/rng.hpp"

namespace wbsn::cs {
namespace {

bool bit_identical(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

std::vector<double> sparse_window_measurements(const SensingMatrix& phi, int levels,
                                               int nonzeros, sig::Rng& rng) {
  std::vector<double> coeffs(phi.cols(), 0.0);
  for (int i = 0; i < nonzeros; ++i) {
    const auto idx = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(phi.cols()) - 1));
    coeffs[idx] = rng.normal(0.0, 2.0);
  }
  return phi.apply(dsp::dwt_inverse(coeffs, levels));
}

TEST(FistaBatch, EmptyBatch) {
  sig::Rng rng(1);
  const auto phi = SensingMatrix::make_sparse_binary(32, 64, 4, rng);
  EXPECT_TRUE(fista_solve_batch(phi, {}, FistaConfig{}).empty());
}

TEST(FistaBatch, BatchOfOneMatchesSolo) {
  sig::Rng rng(2);
  const auto phi = SensingMatrix::make_sparse_binary(64, 128, 4, rng);
  const auto y = sparse_window_measurements(phi, 3, 6, rng);
  FistaConfig cfg;
  cfg.dwt_levels = 3;

  const auto solo = fista_reconstruct(phi, y, cfg);
  const std::vector<std::vector<double>> ys{y};
  const auto batched = fista_solve_batch(phi, ys, cfg);
  ASSERT_EQ(batched.size(), 1u);
  EXPECT_EQ(batched[0].iterations_run, solo.iterations_run);
  EXPECT_TRUE(bit_identical(batched[0].signal, solo.signal));
  EXPECT_TRUE(bit_identical(batched[0].coefficients, solo.coefficients));
}

TEST(FistaBatch, EveryWidthMatchesSoloBitwise) {
  sig::Rng rng(3);
  const std::size_t n = 128;
  const auto phi = SensingMatrix::make_sparse_binary(64, n, 4, rng);
  FistaConfig cfg;
  cfg.dwt_levels = 4;
  cfg.max_iterations = 80;

  // Windows with varied sparsity: convergence speeds differ, so batched
  // solves must freeze windows at different iterations.
  std::vector<std::vector<double>> ys;
  for (int w = 0; w < 8; ++w) {
    ys.push_back(sparse_window_measurements(phi, 4, 3 + 4 * w, rng));
  }
  std::vector<FistaResult> solo;
  for (const auto& y : ys) solo.push_back(fista_reconstruct(phi, y, cfg));

  for (const std::size_t batch : {2u, 3u, 4u, 5u, 8u}) {
    for (std::size_t start = 0; start + batch <= ys.size(); start += batch) {
      const std::span<const std::vector<double>> slice(ys.data() + start, batch);
      const auto results = fista_solve_batch(phi, slice, cfg);
      ASSERT_EQ(results.size(), batch);
      for (std::size_t b = 0; b < batch; ++b) {
        EXPECT_EQ(results[b].iterations_run, solo[start + b].iterations_run)
            << "B=" << batch << " window=" << start + b;
        EXPECT_TRUE(bit_identical(results[b].signal, solo[start + b].signal))
            << "B=" << batch << " window=" << start + b;
        EXPECT_TRUE(bit_identical(results[b].coefficients, solo[start + b].coefficients))
            << "B=" << batch << " window=" << start + b;
      }
    }
  }
}

TEST(FistaBatch, WindowsConvergeIndependently) {
  // A very sparse window next to a dense one: the sparse one must stop
  // earlier inside the batch (per-window freeze), not ride along to the
  // slow window's iteration count.
  sig::Rng rng(4);
  const auto phi = SensingMatrix::make_sparse_binary(96, 128, 4, rng);
  FistaConfig cfg;
  cfg.dwt_levels = 3;
  cfg.max_iterations = 300;
  cfg.tolerance = 1e-5;

  std::vector<std::vector<double>> ys;
  ys.push_back(sparse_window_measurements(phi, 3, 2, rng));
  ys.push_back(sparse_window_measurements(phi, 3, 40, rng));
  const auto results = fista_solve_batch(phi, ys, cfg);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_NE(results[0].iterations_run, results[1].iterations_run)
      << "expected different convergence points for different sparsity";
  EXPECT_LT(std::min(results[0].iterations_run, results[1].iterations_run),
            cfg.max_iterations);
}

TEST(FistaBatch, ReconstructionQualityHolds) {
  // Not just self-consistency: batched reconstructions of exactly-sparse
  // signals still recover them.
  sig::Rng rng(5);
  const std::size_t n = 256;
  const auto phi = SensingMatrix::make_sparse_binary(128, n, 4, rng);
  FistaConfig cfg;
  cfg.dwt_levels = 4;
  cfg.max_iterations = 400;
  cfg.lambda_rel = 0.002;

  std::vector<std::vector<double>> signals;
  std::vector<std::vector<double>> ys;
  for (int w = 0; w < 4; ++w) {
    std::vector<double> coeffs(n, 0.0);
    for (int i = 0; i < 10; ++i) {
      coeffs[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1))] = rng.normal(0.0, 2.0);
    }
    signals.push_back(dsp::dwt_inverse(coeffs, 4));
    ys.push_back(phi.apply(signals.back()));
  }
  const auto results = fista_solve_batch(phi, ys, cfg);
  for (std::size_t w = 0; w < 4; ++w) {
    EXPECT_GT(reconstruction_snr_db(signals[w], results[w].signal), 25.0) << "window " << w;
  }
}

}  // namespace
}  // namespace wbsn::cs
