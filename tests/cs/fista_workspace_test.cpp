// FistaWorkspace arena semantics: grow-only buffers that are stable (no
// reallocation, no growth events) across same-shape solves, grow exactly
// when a larger shape arrives, and keep working — with bit-identical
// results — when shapes alternate.  Plus parity: the into-variant must
// produce the same bits as the allocating fista_solve_batch wrapper.
#include "cs/fista.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <span>
#include <vector>

#include "cs/sensing_matrix.hpp"
#include "dsp/wavelet.hpp"
#include "sig/rng.hpp"

namespace wbsn::cs {
namespace {

bool bit_identical(std::span<const double> a, std::span<const double> b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

std::vector<double> sparse_window_measurements(const SensingMatrix& phi, int levels,
                                               int nonzeros, sig::Rng& rng) {
  std::vector<double> coeffs(phi.cols(), 0.0);
  for (int i = 0; i < nonzeros; ++i) {
    const auto idx = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(phi.cols()) - 1));
    coeffs[idx] = rng.normal(0.0, 2.0);
  }
  return phi.apply(dsp::dwt_inverse(coeffs, levels));
}

struct Problem {
  SensingMatrix phi;
  std::vector<std::vector<double>> ys;
};

Problem make_problem(std::uint64_t seed, std::size_t m, std::size_t n,
                     std::size_t batch) {
  sig::Rng rng(seed);
  Problem problem{SensingMatrix::make_sparse_binary(m, n, 4, rng), {}};
  for (std::size_t b = 0; b < batch; ++b) {
    problem.ys.push_back(
        sparse_window_measurements(problem.phi, 3, 4 + static_cast<int>(3 * b), rng));
  }
  return problem;
}

/// Runs the into-variant against `ws`, returning the signals (allocated
/// here, outside the arena, so callers can compare runs).
std::vector<std::vector<double>> solve_into(const Problem& problem,
                                            const FistaConfig& cfg,
                                            FistaWorkspace& ws) {
  const std::size_t batch = problem.ys.size();
  const std::size_t n = problem.phi.cols();
  std::vector<std::vector<double>> signals(batch, std::vector<double>(n));
  std::vector<std::span<const double>> views;
  std::vector<FistaWindowOut> outs(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    views.emplace_back(problem.ys[b].data(), problem.ys[b].size());
    outs[b].signal = std::span<double>(signals[b].data(), n);
  }
  fista_solve_batch_into(problem.phi, views, cfg, ws, outs);
  return signals;
}

TEST(FistaWorkspace, SameShapeSolvesNeverGrowAndKeepPointerIdentity) {
  const auto problem = make_problem(11, 64, 128, 4);
  FistaConfig cfg;
  cfg.dwt_levels = 3;

  FistaWorkspace ws;
  const auto first = solve_into(problem, cfg, ws);
  const std::size_t grows_after_first = ws.grow_count();
  EXPECT_GE(grows_after_first, 1u);  // First contact sized the arena.

  const double* a_block = ws.a.data();
  const double* y_block = ws.y.data();
  const double* scratch_block = ws.dwt_scr.data();

  for (int run = 0; run < 3; ++run) {
    const auto again = solve_into(problem, cfg, ws);
    for (std::size_t b = 0; b < first.size(); ++b) {
      EXPECT_TRUE(bit_identical(first[b], again[b]));
    }
  }
  // No growth events and no reallocation across repeat solves: the whole
  // point of the arena.  (Compaction swaps a<->a2 etc., so the pair of
  // blocks is stable even when which name holds which block is not.)
  EXPECT_EQ(ws.grow_count(), grows_after_first);
  const bool a_stable = ws.a.data() == a_block || ws.a2.data() == a_block;
  const bool y_stable = ws.y.data() == y_block || ws.y2.data() == y_block;
  EXPECT_TRUE(a_stable);
  EXPECT_TRUE(y_stable);
  EXPECT_EQ(ws.dwt_scr.data(), scratch_block);
}

TEST(FistaWorkspace, LargerShapeGrowsOnceSmallerShapeReusesQuietly) {
  const auto small = make_problem(12, 32, 64, 2);
  const auto large = make_problem(13, 64, 128, 6);
  FistaConfig cfg;
  cfg.dwt_levels = 3;

  FistaWorkspace ws;
  (void)solve_into(small, cfg, ws);
  const std::size_t after_small = ws.grow_count();

  (void)solve_into(large, cfg, ws);
  const std::size_t after_large = ws.grow_count();
  EXPECT_GT(after_large, after_small);  // Bigger shape: exactly one growth event.

  // Back to the small shape: the high-water arena absorbs it, and the
  // result is bit-identical to a fresh-workspace solve (buffer slack must
  // not leak into the arithmetic).
  FistaWorkspace fresh;
  const auto from_fresh = solve_into(small, cfg, fresh);
  const auto from_reused = solve_into(small, cfg, ws);
  EXPECT_EQ(ws.grow_count(), after_large);
  for (std::size_t b = 0; b < from_fresh.size(); ++b) {
    EXPECT_TRUE(bit_identical(from_fresh[b], from_reused[b]));
  }
}

TEST(FistaWorkspace, IntoVariantMatchesAllocatingWrapperBitwise) {
  const auto problem = make_problem(14, 64, 128, 5);
  FistaConfig cfg;
  cfg.dwt_levels = 4;
  cfg.max_iterations = 60;

  const auto wrapped = fista_solve_batch(problem.phi, problem.ys, cfg);

  FistaWorkspace ws;
  const auto direct = solve_into(problem, cfg, ws);
  ASSERT_EQ(wrapped.size(), direct.size());
  for (std::size_t b = 0; b < wrapped.size(); ++b) {
    EXPECT_TRUE(bit_identical(wrapped[b].signal, direct[b]));
  }
}

TEST(FistaWorkspace, DebiasPathRunsOnTheArena) {
  const auto problem = make_problem(15, 64, 128, 3);
  FistaConfig cfg;
  cfg.dwt_levels = 3;
  cfg.debias = true;
  cfg.debias_iterations = 8;

  const auto wrapped = fista_solve_batch(problem.phi, problem.ys, cfg);
  FistaWorkspace ws;
  const auto first = solve_into(problem, cfg, ws);
  const std::size_t grows = ws.grow_count();
  const auto second = solve_into(problem, cfg, ws);
  EXPECT_EQ(ws.grow_count(), grows);  // Debias scratch is part of the arena.
  for (std::size_t b = 0; b < wrapped.size(); ++b) {
    EXPECT_TRUE(bit_identical(wrapped[b].signal, first[b]));
    EXPECT_TRUE(bit_identical(first[b], second[b]));
  }
}

}  // namespace
}  // namespace wbsn::cs
