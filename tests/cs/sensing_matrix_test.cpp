#include "cs/sensing_matrix.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace wbsn::cs {
namespace {

TEST(SensingMatrix, SparseBinaryHasExactColumnWeight) {
  sig::Rng rng(1);
  const auto phi = SensingMatrix::make_sparse_binary(64, 256, 4, rng);
  EXPECT_EQ(phi.rows(), 64u);
  EXPECT_EQ(phi.cols(), 256u);
  EXPECT_EQ(phi.nonzeros(), 256u * 4u);
}

TEST(SensingMatrix, EncodeMatchesApplyOnIntegers) {
  sig::Rng rng(2);
  const auto phi = SensingMatrix::make_sparse_binary(32, 128, 3, rng);
  std::vector<std::int32_t> x(128);
  std::vector<double> xd(128);
  for (std::size_t i = 0; i < 128; ++i) {
    x[i] = static_cast<std::int32_t>(rng.uniform_int(-500, 500));
    xd[i] = static_cast<double>(x[i]);
  }
  const auto yi = phi.encode(x);
  const auto yd = phi.apply(xd);
  ASSERT_EQ(yi.size(), 32u);
  for (std::size_t r = 0; r < 32; ++r) {
    EXPECT_DOUBLE_EQ(static_cast<double>(yi[r]), yd[r]);
  }
}

TEST(SensingMatrix, AdjointIsTrueTranspose) {
  // <Phi x, y> == <x, Phi' y> for random vectors.
  sig::Rng rng(3);
  const auto phi = SensingMatrix::make_bernoulli(24, 64, rng);
  std::vector<double> x(64);
  std::vector<double> y(24);
  for (auto& v : x) v = rng.normal();
  for (auto& v : y) v = rng.normal();
  const auto ax = phi.apply(x);
  const auto aty = phi.apply_adjoint(y);
  double lhs = 0.0;
  double rhs = 0.0;
  for (std::size_t i = 0; i < 24; ++i) lhs += ax[i] * y[i];
  for (std::size_t i = 0; i < 64; ++i) rhs += x[i] * aty[i];
  EXPECT_NEAR(lhs, rhs, 1e-9);
}

TEST(SensingMatrix, EncoderUsesOnlyAdds) {
  sig::Rng rng(4);
  const auto phi = SensingMatrix::make_sparse_binary(64, 512, 4, rng);
  std::vector<std::int32_t> x(512, 9);
  dsp::OpCount ops;
  phi.encode(x, &ops);
  EXPECT_EQ(ops.mul, 0u);
  EXPECT_EQ(ops.div, 0u);
  EXPECT_EQ(ops.add, 512u * 4u);  // Exactly d adds per sample.
}

TEST(SensingMatrix, SparseBinaryStorageTiny) {
  sig::Rng rng(5);
  const auto sparse = SensingMatrix::make_sparse_binary(128, 512, 4, rng);
  const auto dense = SensingMatrix::make_bernoulli(128, 512, rng);
  // 512 cols x 4 entries x 2 bytes = 4 kB vs 128 kB + signs for dense.
  EXPECT_EQ(sparse.storage_bytes(), 512u * 4u * 2u);
  EXPECT_GT(dense.storage_bytes(), 30u * sparse.storage_bytes());
}

TEST(CompressionRatio, Definition) {
  EXPECT_DOUBLE_EQ(compression_ratio_percent(128, 512), 75.0);
  EXPECT_DOUBLE_EQ(compression_ratio_percent(512, 512), 0.0);
  EXPECT_EQ(rows_for_cr(75.0, 512), 128u);
  EXPECT_EQ(rows_for_cr(0.0, 512), 512u);
  // Round trip across the sweep grid.
  for (double cr = 20.0; cr < 95.0; cr += 5.0) {
    const auto m = rows_for_cr(cr, 512);
    EXPECT_NEAR(compression_ratio_percent(m, 512), cr, 0.2) << cr;
  }
}

TEST(SensingMatrix, DeterministicForSeed) {
  sig::Rng a(6);
  sig::Rng b(6);
  const auto pa = SensingMatrix::make_sparse_binary(32, 64, 3, a);
  const auto pb = SensingMatrix::make_sparse_binary(32, 64, 3, b);
  std::vector<double> x(64);
  sig::Rng rx(7);
  for (auto& v : x) v = rx.normal();
  EXPECT_EQ(pa.apply(x), pb.apply(x));
}

}  // namespace
}  // namespace wbsn::cs
