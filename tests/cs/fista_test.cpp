#include "cs/fista.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "cs/pipeline.hpp"
#include "dsp/wavelet.hpp"
#include "sig/ecg_synth.hpp"

namespace wbsn::cs {
namespace {

/// A synthetic exactly-sparse signal in the wavelet domain.
std::vector<double> sparse_signal(std::size_t n, int levels, int nonzeros, sig::Rng& rng) {
  std::vector<double> coeffs(n, 0.0);
  for (int i = 0; i < nonzeros; ++i) {
    const auto idx = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    coeffs[idx] = rng.normal(0.0, 2.0);
  }
  return dsp::dwt_inverse(coeffs, levels);
}

TEST(Fista, RecoversExactlySparseSignal) {
  sig::Rng rng(1);
  const std::size_t n = 256;
  const auto x = sparse_signal(n, 4, 10, rng);
  const auto phi = SensingMatrix::make_sparse_binary(100, n, 4, rng);
  const auto y = phi.apply(x);
  FistaConfig cfg;
  cfg.dwt_levels = 4;
  cfg.max_iterations = 400;
  cfg.lambda_rel = 0.002;
  const auto result = fista_reconstruct(phi, y, cfg);
  EXPECT_GT(reconstruction_snr_db(x, result.signal), 25.0);
}

TEST(Fista, MoreMeasurementsGiveBetterSnr) {
  sig::Rng rng(2);
  const std::size_t n = 256;
  const auto x = sparse_signal(n, 4, 12, rng);
  double prev_snr = -100.0;
  for (std::size_t m : {40u, 80u, 160u}) {
    sig::Rng mrng(99);
    const auto phi = SensingMatrix::make_sparse_binary(m, n, 4, mrng);
    const auto y = phi.apply(x);
    FistaConfig cfg;
    cfg.dwt_levels = 4;
    const auto result = fista_reconstruct(phi, y, cfg);
    const double snr = reconstruction_snr_db(x, result.signal);
    EXPECT_GT(snr, prev_snr) << m;
    prev_snr = snr;
  }
}

TEST(Fista, EcgWindowAt50PercentCrIsGood) {
  sig::SynthConfig scfg;
  scfg.episodes = {{sig::RhythmEpisode::Kind::kSinus, 10}};
  scfg.noise = sig::NoiseParams::preset(sig::NoiseLevel::kNone);
  sig::Rng rng(3);
  const auto rec = synthesize_ecg(scfg, rng);
  std::vector<double> x(rec.leads[0].begin(), rec.leads[0].begin() + 512);
  const auto phi = SensingMatrix::make_sparse_binary(256, 512, 4, rng);
  const auto y = phi.apply(x);
  const auto result = fista_reconstruct(phi, y, FistaConfig{});
  EXPECT_GT(reconstruction_snr_db(x, result.signal), 20.0);
}

TEST(Fista, StopsEarlyOnConvergence) {
  sig::Rng rng(4);
  const std::size_t n = 128;
  const auto x = sparse_signal(n, 3, 4, rng);
  const auto phi = SensingMatrix::make_sparse_binary(80, n, 4, rng);
  const auto y = phi.apply(x);
  FistaConfig cfg;
  cfg.dwt_levels = 3;
  cfg.max_iterations = 2000;
  cfg.tolerance = 1e-5;
  const auto result = fista_reconstruct(phi, y, cfg);
  EXPECT_LT(result.iterations_run, 2000);
}

TEST(GroupFista, JointBeatsIndependentAtHighCr) {
  // The Figure-5 mechanism: leads share wavelet support, so joint recovery
  // tolerates higher CR.  Compare on a 3-lead record at CR = 75 %.
  sig::SynthConfig scfg;
  scfg.episodes = {{sig::RhythmEpisode::Kind::kSinus, 20}};
  scfg.noise = sig::NoiseParams::preset(sig::NoiseLevel::kNone);
  sig::Rng rng(5);
  const auto rec = synthesize_ecg(scfg, rng);

  CsPipelineConfig cfg;
  const auto joint = run_multi_lead_cs(rec, 75.0, cfg);
  const auto indep = run_independent_leads_cs(rec, 75.0, cfg);
  EXPECT_GT(joint.mean_snr_db, indep.mean_snr_db + 1.0);
}

TEST(Omp, RecoversVerySparseSignal) {
  sig::Rng rng(6);
  const std::size_t n = 128;
  const auto x = sparse_signal(n, 3, 5, rng);
  const auto phi = SensingMatrix::make_sparse_binary(64, n, 4, rng);
  const auto y = phi.apply(x);
  OmpConfig cfg;
  cfg.dwt_levels = 3;
  cfg.max_atoms = 16;
  const auto xhat = omp_reconstruct(phi, y, cfg);
  EXPECT_GT(reconstruction_snr_db(x, xhat), 40.0);
}

TEST(Metrics, SnrOfExactCopyIsHuge) {
  const std::vector<double> x = {1.0, -2.0, 3.0};
  EXPECT_GE(reconstruction_snr_db(x, x), 140.0);
}

TEST(Metrics, KnownSnrCase) {
  // Error of exactly 10% RMS -> SNR = 20 dB, PRD = 10 %.
  std::vector<double> x(100);
  std::vector<double> xhat(100);
  for (std::size_t i = 0; i < 100; ++i) {
    x[i] = std::sin(0.2 * static_cast<double>(i));
  }
  double energy = 0.0;
  for (double v : x) energy += v * v;
  // Perturb a single sample so the error energy is 1% of signal energy.
  xhat = x;
  xhat[50] += std::sqrt(0.01 * energy);
  EXPECT_NEAR(reconstruction_snr_db(x, xhat), 20.0, 1e-6);
  EXPECT_NEAR(prd_percent(x, xhat), 10.0, 1e-6);
}

TEST(Metrics, SnrSymmetricScale) {
  std::vector<double> x(64);
  for (std::size_t i = 0; i < 64; ++i) x[i] = std::cos(0.1 * static_cast<double>(i));
  std::vector<double> xhat = x;
  for (double& v : xhat) v *= 1.01;  // 1% multiplicative error -> 40 dB.
  EXPECT_NEAR(reconstruction_snr_db(x, xhat), 40.0, 0.2);
}

TEST(CrAtSnr, InterpolatesCrossing) {
  const std::vector<double> crs = {50.0, 60.0, 70.0, 80.0};
  const std::vector<double> snrs = {30.0, 25.0, 15.0, 8.0};
  // 20 dB crossing between CR 60 and 70 -> 65.
  EXPECT_NEAR(cr_at_snr(crs, snrs, 20.0), 65.0, 0.01);
}

TEST(CrAtSnr, AllAboveTargetReturnsLastCr) {
  const std::vector<double> crs = {50.0, 60.0};
  const std::vector<double> snrs = {30.0, 25.0};
  EXPECT_NEAR(cr_at_snr(crs, snrs, 20.0), 60.0, 1e-9);
}

}  // namespace
}  // namespace wbsn::cs
