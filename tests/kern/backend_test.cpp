#include "kern/backend.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "kern/spmv_plan.hpp"
#include "sig/rng.hpp"

namespace wbsn::kern {
namespace {

/// Restores the entry backend when a test that switches backends exits.
class BackendGuard {
 public:
  BackendGuard() : previous_(active_backend()) {}
  ~BackendGuard() { set_backend(previous_); }
  BackendGuard(const BackendGuard&) = delete;
  BackendGuard& operator=(const BackendGuard&) = delete;

 private:
  Backend previous_;
};

TEST(Backend, ScalarAlwaysAvailable) {
  BackendGuard guard;
  ASSERT_NE(scalar_ops(), nullptr);
  EXPECT_TRUE(set_backend(Backend::kScalar));
  EXPECT_EQ(active_backend(), Backend::kScalar);
  EXPECT_STREQ(backend_name(), "scalar");
}

TEST(Backend, Avx2SelectableIffSupported) {
  BackendGuard guard;
  if (avx2_supported()) {
    ASSERT_NE(avx2_ops(), nullptr);
    EXPECT_TRUE(set_backend(Backend::kAvx2));
    EXPECT_EQ(active_backend(), Backend::kAvx2);
    EXPECT_STREQ(backend_name(), "avx2");
  } else {
    EXPECT_FALSE(set_backend(Backend::kAvx2));
    // A failed switch must leave the selection untouched and usable.
    EXPECT_NE(backend_name(), nullptr);
  }
}

TEST(Backend, OpsTableFullyPopulated) {
  for (const Ops* table : {scalar_ops(), avx2_ops()}) {
    if (table == nullptr) continue;  // AVX2 compiled out.
    EXPECT_NE(table->name, nullptr);
    EXPECT_NE(table->dot, nullptr);
    EXPECT_NE(table->nrm2_sq, nullptr);
    EXPECT_NE(table->axpy, nullptr);
    EXPECT_NE(table->xpby, nullptr);
    EXPECT_NE(table->grad_step, nullptr);
    EXPECT_NE(table->soft_threshold, nullptr);
    EXPECT_NE(table->soft_threshold_batch, nullptr);
    EXPECT_NE(table->momentum, nullptr);
    EXPECT_NE(table->momentum_batch, nullptr);
    EXPECT_NE(table->spmv, nullptr);
    EXPECT_NE(table->spmv_batch, nullptr);
    EXPECT_NE(table->dwt_step, nullptr);
    EXPECT_NE(table->idwt_step, nullptr);
    EXPECT_NE(table->dwt_step_batch, nullptr);
    EXPECT_NE(table->idwt_step_batch, nullptr);
  }
}

// --- Spmv plan construction and evaluation ----------------------------------

SpmvPlan random_plan(std::size_t outputs, std::size_t inputs, std::size_t max_terms,
                     sig::Rng& rng, std::vector<SpmvTerms>* terms_out = nullptr) {
  std::vector<SpmvTerms> terms(outputs);
  for (auto& t : terms) {
    const auto count = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(max_terms)));
    for (std::size_t i = 0; i < count; ++i) {
      t.emplace_back(
          static_cast<std::int32_t>(rng.uniform_int(0, static_cast<std::int64_t>(inputs) - 1)),
          rng.bernoulli(0.5) ? 1.0 : -1.0);
    }
  }
  if (terms_out != nullptr) *terms_out = terms;
  return build_spmv_plan(inputs, terms);
}

/// Naive dense reference of the plan's linear map.
std::vector<double> naive_spmv(const std::vector<SpmvTerms>& terms,
                               const std::vector<double>& x) {
  std::vector<double> y(terms.size(), 0.0);
  for (std::size_t o = 0; o < terms.size(); ++o) {
    for (const auto& [idx, sgn] : terms[o]) y[o] += sgn * x[static_cast<std::size_t>(idx)];
  }
  return y;
}

TEST(SpmvPlan, MatchesNaiveReferenceOnOddShapes) {
  sig::Rng rng(1);
  for (const std::size_t outputs : {1u, 2u, 3u, 4u, 5u, 7u, 33u, 64u}) {
    std::vector<SpmvTerms> terms;
    const std::size_t inputs = 1 + outputs * 2;
    const auto plan = random_plan(outputs, inputs, 9, rng, &terms);
    EXPECT_EQ(plan.num_outputs, outputs);
    EXPECT_EQ(plan.num_inputs, inputs);

    std::vector<double> x(inputs);
    for (auto& v : x) v = rng.normal();
    std::vector<double> y(outputs, -1.0);
    ops().spmv(plan, x.data(), y.data());
    const auto expected = naive_spmv(terms, x);
    for (std::size_t o = 0; o < outputs; ++o) {
      EXPECT_NEAR(y[o], expected[o], 1e-12) << "output " << o << " of " << outputs;
    }
  }
}

TEST(SpmvPlan, UniformPositiveDetection) {
  // 8 outputs x 3 terms, all +1 -> uniform; flipping one sign or dropping
  // one term (creating a pad) clears the flag.
  std::vector<SpmvTerms> terms(8);
  for (auto& t : terms) {
    t = {{0, 1.0}, {1, 1.0}, {2, 1.0}};
  }
  EXPECT_TRUE(build_spmv_plan(4, terms).uniform_positive);

  auto negative = terms;
  negative[5][1].second = -1.0;
  EXPECT_FALSE(build_spmv_plan(4, negative).uniform_positive);

  auto ragged = terms;
  ragged[2].pop_back();
  EXPECT_FALSE(build_spmv_plan(4, ragged).uniform_positive);
}

TEST(SpmvPlan, EmptyPlanIsHarmless) {
  const auto plan = build_spmv_plan(4, {});
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.num_blocks(), 0u);
  double y = 123.0;
  std::vector<double> x(4, 1.0);
  ops().spmv(plan, x.data(), &y);  // No outputs: must not touch y.
  EXPECT_EQ(y, 123.0);
}

TEST(SpmvPlan, BatchLayoutMatchesSingle) {
  sig::Rng rng(2);
  std::vector<SpmvTerms> terms;
  const auto plan = random_plan(13, 29, 6, rng, &terms);
  constexpr std::size_t kBatch = 5;

  std::vector<std::vector<double>> xs(kBatch, std::vector<double>(29));
  for (auto& x : xs) {
    for (auto& v : x) v = rng.normal();
  }
  std::vector<double> x_interleaved(29 * kBatch);
  for (std::size_t i = 0; i < 29; ++i) {
    for (std::size_t b = 0; b < kBatch; ++b) x_interleaved[i * kBatch + b] = xs[b][i];
  }
  std::vector<double> y_batch(13 * kBatch);
  ops().spmv_batch(plan, x_interleaved.data(), kBatch, y_batch.data());

  for (std::size_t b = 0; b < kBatch; ++b) {
    std::vector<double> y(13);
    ops().spmv(plan, xs[b].data(), y.data());
    for (std::size_t o = 0; o < 13; ++o) {
      EXPECT_EQ(y[o], y_batch[o * kBatch + b]) << "window " << b << " output " << o;
    }
  }
}

}  // namespace
}  // namespace wbsn::kern
