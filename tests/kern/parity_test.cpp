// Randomized dispatch-parity property tests: the scalar and AVX2 backends
// must produce bit-identical doubles for every kernel, for every size
// (vector bodies AND tails), and the interleaved batch kernels must
// reproduce the single-window kernels exactly at any batch width.  This
// is the test behind the engine's determinism-across-dispatch contract.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "cs/fista.hpp"
#include "cs/sensing_matrix.hpp"
#include "dsp/wavelet.hpp"
#include "kern/backend.hpp"
#include "sig/rng.hpp"

namespace wbsn::kern {
namespace {

class BackendGuard {
 public:
  BackendGuard() : previous_(active_backend()) {}
  ~BackendGuard() { set_backend(previous_); }
  BackendGuard(const BackendGuard&) = delete;
  BackendGuard& operator=(const BackendGuard&) = delete;

 private:
  Backend previous_;
};

bool bit_identical(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

bool bit_identical(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

std::vector<double> random_vector(std::size_t n, sig::Rng& rng) {
  std::vector<double> v(n);
  for (auto& x : v) x = rng.normal();
  return v;
}

/// Sizes exercising empty input, pure tails, and vector bodies + tails.
const std::size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 15, 64, 67, 512};

#define REQUIRE_AVX2()                                            \
  if (!avx2_supported()) {                                        \
    GTEST_SKIP() << "AVX2 unavailable on this host/build";        \
  }

TEST(DispatchParity, Reductions) {
  REQUIRE_AVX2();
  const Ops& scalar = *scalar_ops();
  const Ops& avx2 = *avx2_ops();
  sig::Rng rng(1);
  for (const std::size_t n : kSizes) {
    const auto x = random_vector(n, rng);
    const auto y = random_vector(n, rng);
    EXPECT_TRUE(bit_identical(scalar.dot(x.data(), y.data(), n),
                              avx2.dot(x.data(), y.data(), n)))
        << "dot n=" << n;
    EXPECT_TRUE(bit_identical(scalar.nrm2_sq(x.data(), n), avx2.nrm2_sq(x.data(), n)))
        << "nrm2_sq n=" << n;
  }
}

TEST(DispatchParity, Elementwise) {
  REQUIRE_AVX2();
  const Ops& scalar = *scalar_ops();
  const Ops& avx2 = *avx2_ops();
  sig::Rng rng(2);
  for (const std::size_t n : kSizes) {
    const auto x = random_vector(n, rng);
    const auto z = random_vector(n, rng);
    auto y_a = random_vector(n, rng);
    auto y_b = y_a;

    scalar.axpy(0.37, x.data(), y_a.data(), n);
    avx2.axpy(0.37, x.data(), y_b.data(), n);
    EXPECT_TRUE(bit_identical(y_a, y_b)) << "axpy n=" << n;

    scalar.xpby(x.data(), -1.13, y_a.data(), n);
    avx2.xpby(x.data(), -1.13, y_b.data(), n);
    EXPECT_TRUE(bit_identical(y_a, y_b)) << "xpby n=" << n;

    std::vector<double> a_a(n);
    std::vector<double> a_b(n);
    scalar.grad_step(z.data(), x.data(), 3.7, a_a.data(), n);
    avx2.grad_step(z.data(), x.data(), 3.7, a_b.data(), n);
    EXPECT_TRUE(bit_identical(a_a, a_b)) << "grad_step n=" << n;
  }
}

TEST(DispatchParity, SoftThresholdIncludingSignedZeros) {
  REQUIRE_AVX2();
  const Ops& scalar = *scalar_ops();
  const Ops& avx2 = *avx2_ops();
  sig::Rng rng(3);
  for (const std::size_t n : kSizes) {
    auto a = random_vector(n, rng);
    // Sprinkle sub-threshold values of both signs: the branchless form
    // yields ±0.0 carrying the input's sign bit, and both backends must
    // agree on those bits too.
    for (std::size_t i = 0; i < n; i += 3) a[i] *= 1e-3;
    auto a_b = a;
    scalar.soft_threshold(a.data(), n, 0.5);
    avx2.soft_threshold(a_b.data(), n, 0.5);
    EXPECT_TRUE(bit_identical(a, a_b)) << "soft_threshold n=" << n;
  }

  for (const std::size_t batch : {1u, 2u, 3u, 4u, 5u, 8u}) {
    const std::size_t n = 37;
    auto a = random_vector(n * batch, rng);
    for (std::size_t i = 0; i < a.size(); i += 2) a[i] *= 1e-3;
    auto a_b = a;
    std::vector<double> tau(batch);
    for (auto& t : tau) t = std::abs(rng.normal()) + 0.1;
    scalar.soft_threshold_batch(a.data(), n, batch, tau.data());
    avx2.soft_threshold_batch(a_b.data(), n, batch, tau.data());
    EXPECT_TRUE(bit_identical(a, a_b)) << "soft_threshold_batch B=" << batch;
  }
}

TEST(DispatchParity, Momentum) {
  REQUIRE_AVX2();
  const Ops& scalar = *scalar_ops();
  const Ops& avx2 = *avx2_ops();
  sig::Rng rng(4);
  for (const std::size_t n : kSizes) {
    const auto a = random_vector(n, rng);
    const auto a_prev = random_vector(n, rng);
    std::vector<double> z_a(n);
    std::vector<double> z_b(n);
    double d_a = -1.0;
    double s_a = -1.0;
    double d_b = -2.0;
    double s_b = -2.0;
    scalar.momentum(a.data(), a_prev.data(), z_a.data(), 0.81, n, &d_a, &s_a);
    avx2.momentum(a.data(), a_prev.data(), z_b.data(), 0.81, n, &d_b, &s_b);
    EXPECT_TRUE(bit_identical(z_a, z_b)) << "momentum z n=" << n;
    EXPECT_TRUE(bit_identical(d_a, d_b)) << "momentum delta n=" << n;
    EXPECT_TRUE(bit_identical(s_a, s_b)) << "momentum scale n=" << n;
  }
}

TEST(DispatchParity, MomentumBatchMatchesSingle) {
  // Runs on every available backend: per-window batched sums must equal
  // the single-window kernel bit for bit (the batch-width contract).
  for (const Ops* table : {scalar_ops(), avx2_ops()}) {
    if (table == nullptr || (table == avx2_ops() && !avx2_supported())) continue;
    sig::Rng rng(5);
    for (const std::size_t batch : {1u, 2u, 4u, 5u, 8u}) {
      const std::size_t n = 67;
      std::vector<std::vector<double>> a(batch);
      std::vector<std::vector<double>> a_prev(batch);
      std::vector<double> ai(n * batch);
      std::vector<double> pi(n * batch);
      for (std::size_t b = 0; b < batch; ++b) {
        a[b] = random_vector(n, rng);
        a_prev[b] = random_vector(n, rng);
        for (std::size_t i = 0; i < n; ++i) {
          ai[i * batch + b] = a[b][i];
          pi[i * batch + b] = a_prev[b][i];
        }
      }
      std::vector<double> zi(n * batch);
      std::vector<double> delta(batch);
      std::vector<double> scale(batch);
      table->momentum_batch(ai.data(), pi.data(), zi.data(), 0.6, n, batch, delta.data(),
                            scale.data());
      for (std::size_t b = 0; b < batch; ++b) {
        std::vector<double> z(n);
        double d = 0.0;
        double s = 0.0;
        table->momentum(a[b].data(), a_prev[b].data(), z.data(), 0.6, n, &d, &s);
        EXPECT_TRUE(bit_identical(d, delta[b])) << table->name << " B=" << batch;
        EXPECT_TRUE(bit_identical(s, scale[b])) << table->name << " B=" << batch;
        for (std::size_t i = 0; i < n; ++i) {
          EXPECT_TRUE(bit_identical(z[i], zi[i * batch + b]))
              << table->name << " B=" << batch << " i=" << i;
        }
      }
    }
  }
}

TEST(DispatchParity, SensingMatrixApplyAdjoint) {
  REQUIRE_AVX2();
  BackendGuard guard;
  sig::Rng mrng(6);
  sig::Rng xrng(7);
  // Sparse binary (uniform-positive adjoint plan, ragged apply plan) and
  // Bernoulli (dense ±1): exercises the signed and sign-free spmv paths.
  const auto sparse = cs::SensingMatrix::make_sparse_binary(100, 256, 4, mrng);
  const auto dense = cs::SensingMatrix::make_bernoulli(24, 64, mrng);
  for (const auto* phi : {&sparse, &dense}) {
    const auto x = random_vector(phi->cols(), xrng);
    const auto y = random_vector(phi->rows(), xrng);

    ASSERT_TRUE(set_backend(Backend::kScalar));
    const auto ax_scalar = phi->apply(x);
    const auto aty_scalar = phi->apply_adjoint(y);
    ASSERT_TRUE(set_backend(Backend::kAvx2));
    const auto ax_avx2 = phi->apply(x);
    const auto aty_avx2 = phi->apply_adjoint(y);

    EXPECT_TRUE(bit_identical(ax_scalar, ax_avx2));
    EXPECT_TRUE(bit_identical(aty_scalar, aty_avx2));
  }
}

TEST(DispatchParity, DwtForwardInverse) {
  REQUIRE_AVX2();
  BackendGuard guard;
  sig::Rng rng(8);
  for (const std::size_t n : {8u, 16u, 64u, 256u, 512u}) {
    const auto x = random_vector(n, rng);
    const int levels = dsp::dwt_max_levels(n);

    ASSERT_TRUE(set_backend(Backend::kScalar));
    const auto coeffs_scalar = dsp::dwt_forward(x, levels);
    const auto back_scalar = dsp::dwt_inverse(coeffs_scalar, levels);
    ASSERT_TRUE(set_backend(Backend::kAvx2));
    const auto coeffs_avx2 = dsp::dwt_forward(x, levels);
    const auto back_avx2 = dsp::dwt_inverse(coeffs_avx2, levels);

    EXPECT_TRUE(bit_identical(coeffs_scalar, coeffs_avx2)) << "forward n=" << n;
    EXPECT_TRUE(bit_identical(back_scalar, back_avx2)) << "inverse n=" << n;
  }
}

TEST(DispatchParity, DwtBatchMatchesSingle) {
  sig::Rng rng(9);
  for (const std::size_t batch : {1u, 3u, 4u, 8u}) {
    const std::size_t n = 128;
    const int levels = 4;
    std::vector<std::vector<double>> xs(batch);
    std::vector<double> interleaved(n * batch);
    for (std::size_t b = 0; b < batch; ++b) {
      xs[b] = random_vector(n, rng);
      for (std::size_t i = 0; i < n; ++i) interleaved[i * batch + b] = xs[b][i];
    }
    const auto coeffs = dsp::dwt_forward_batch(interleaved, batch, levels);
    const auto back = dsp::dwt_inverse_batch(coeffs, batch, levels);
    for (std::size_t b = 0; b < batch; ++b) {
      const auto solo = dsp::dwt_forward(xs[b], levels);
      const auto solo_back = dsp::dwt_inverse(solo, levels);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_TRUE(bit_identical(solo[i], coeffs[i * batch + b]))
            << "B=" << batch << " b=" << b << " i=" << i;
        EXPECT_TRUE(bit_identical(solo_back[i], back[i * batch + b]))
            << "B=" << batch << " b=" << b << " i=" << i;
      }
    }
  }
}

/// End-to-end: full FISTA reconstructions must be bit-identical across
/// backends at every batch width — the property the host engine's
/// determinism contract rests on.
TEST(DispatchParity, FistaEndToEndAcrossBackendsAndBatchWidths) {
  REQUIRE_AVX2();
  BackendGuard guard;
  sig::Rng rng(10);
  const std::size_t n = 128;
  const std::size_t m = 64;
  const auto phi = cs::SensingMatrix::make_sparse_binary(m, n, 4, rng);

  constexpr std::size_t kWindows = 8;
  std::vector<std::vector<double>> ys(kWindows);
  for (auto& y : ys) {
    // Measurements of random sparse-ish signals (varied sparsity so the
    // windows converge after different iteration counts).
    auto x = random_vector(n, rng);
    for (std::size_t i = 0; i < n; i += 2) x[i] *= 0.05;
    y = phi.apply(x);
  }

  cs::FistaConfig cfg;
  cfg.max_iterations = 60;
  cfg.debias_iterations = 8;

  ASSERT_TRUE(set_backend(Backend::kScalar));
  std::vector<cs::FistaResult> solo_scalar;
  for (const auto& y : ys) solo_scalar.push_back(cs::fista_reconstruct(phi, y, cfg));

  for (const Backend backend : {Backend::kScalar, Backend::kAvx2}) {
    ASSERT_TRUE(set_backend(backend));
    for (const std::size_t batch : {1u, 4u, 8u}) {
      for (std::size_t start = 0; start + batch <= kWindows; start += batch) {
        const std::span<const std::vector<double>> slice(ys.data() + start, batch);
        const auto results = cs::fista_solve_batch(phi, slice, cfg);
        for (std::size_t b = 0; b < batch; ++b) {
          const auto& expected = solo_scalar[start + b];
          EXPECT_EQ(results[b].iterations_run, expected.iterations_run)
              << "backend=" << (backend == Backend::kScalar ? "scalar" : "avx2")
              << " B=" << batch << " window=" << start + b;
          EXPECT_TRUE(bit_identical(results[b].signal, expected.signal))
              << "backend=" << (backend == Backend::kScalar ? "scalar" : "avx2")
              << " B=" << batch << " window=" << start + b;
          EXPECT_TRUE(bit_identical(results[b].coefficients, expected.coefficients))
              << "backend=" << (backend == Backend::kScalar ? "scalar" : "avx2")
              << " B=" << batch << " window=" << start + b;
        }
      }
    }
  }
}

}  // namespace
}  // namespace wbsn::kern
